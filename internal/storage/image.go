package storage

// Device images: exported snapshots of a device's full state, used by the
// db layer's save/load (checkpointing) support. Images are plain data
// with exported fields so they serialize with encoding/gob.

// MagneticImage is the serializable state of a MagneticDisk.
type MagneticImage struct {
	PageSize int
	Pages    [][]byte // nil = unwritten or freed
	Live     []bool
	Free     []uint64
	Stats    MagneticStats
}

// Image captures the disk's current state.
func (d *MagneticDisk) Image() MagneticImage {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := MagneticImage{
		PageSize: d.pageSize,
		Pages:    make([][]byte, len(d.pages)),
		Live:     append([]bool(nil), d.live...),
		Free:     append([]uint64(nil), d.free...),
		Stats:    d.stats,
	}
	for i, p := range d.pages {
		if p != nil {
			img.Pages[i] = append([]byte(nil), p...)
		}
	}
	return img
}

// NewMagneticFromImage reconstructs a disk from an image.
func NewMagneticFromImage(img MagneticImage, cost CostModel) *MagneticDisk {
	d := NewMagneticDisk(img.PageSize, cost)
	d.pages = make([][]byte, len(img.Pages))
	for i, p := range img.Pages {
		if p != nil {
			d.pages[i] = append([]byte(nil), p...)
		}
	}
	d.live = append([]bool(nil), img.Live...)
	d.free = append([]uint64(nil), img.Free...)
	d.stats = img.Stats
	return d
}

// WORMImage is the serializable state of a WORMDisk.
type WORMImage struct {
	SectorSize     int
	Sectors        [][]byte // nil = unburned
	Reserved       uint64
	PlatterSectors uint64
	Drives         int
	Stats          WORMStats
}

// Image captures the device's current state. Mounted-platter state is
// transient and not captured (a reopened library starts with no platters
// on line).
func (d *WORMDisk) Image() WORMImage {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := WORMImage{
		SectorSize:     d.sectorSize,
		Sectors:        make([][]byte, len(d.sectors)),
		Reserved:       d.reserved,
		PlatterSectors: d.platterSectors,
		Drives:         d.drives,
		Stats:          d.stats,
	}
	for i, s := range d.sectors {
		if s != nil {
			img.Sectors[i] = append([]byte(nil), s...)
		}
	}
	return img
}

// NewWORMFromImage reconstructs a device from an image.
func NewWORMFromImage(img WORMImage, cost CostModel) *WORMDisk {
	d := NewWORMDisk(WORMConfig{
		SectorSize:     img.SectorSize,
		Cost:           cost,
		PlatterSectors: img.PlatterSectors,
		Drives:         img.Drives,
	})
	d.sectors = make([][]byte, len(img.Sectors))
	for i, s := range img.Sectors {
		if s != nil {
			d.sectors[i] = append([]byte(nil), s...)
		}
	}
	d.reserved = img.Reserved
	d.stats = img.Stats
	return d
}
