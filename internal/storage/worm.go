package storage

import (
	"fmt"
	"sync"
	"time"
)

// WORMStats is a snapshot of write-once device accounting. PayloadBytes vs.
// the total burned capacity (SectorsBurned × sector size) is the space-
// utilization measure behind the paper's headline argument: incremental
// one-entry writes waste most of each sector, while consolidated appends
// "nearly approximate the sector size" (§1).
type WORMStats struct {
	SectorReads   uint64
	SectorWrites  uint64
	Appends       uint64
	SectorsBurned uint64
	PayloadBytes  uint64
	WastedBytes   uint64
	Mounts        uint64        // robot mounts of off-line platters
	SimTime       time.Duration // accumulated simulated access latency
}

// BytesBurned returns the total optical capacity consumed (SpaceO in the
// paper's cost function CS = SpaceM·CM + SpaceO·CO).
func (s WORMStats) BytesBurned(sectorSize int) uint64 {
	return s.SectorsBurned * uint64(sectorSize)
}

// Utilization returns PayloadBytes / BytesBurned, the fraction of burned
// optical capacity holding real data. It is clamped to [0, 1]: an empty
// (or fully compacted-away) device divides by zero, and the conservative
// accounting of fault-torn runs can leave the ratio marginally off on
// either side.
func (s WORMStats) Utilization(sectorSize int) float64 {
	burned := s.BytesBurned(sectorSize)
	if burned == 0 {
		return 1
	}
	u := float64(s.PayloadBytes) / float64(burned)
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// WORMDisk simulates a write-once read-many optical device (or a library of
// them). Storage is a growing array of fixed-size sectors; each sector can
// be written exactly once. Two allocation styles are provided, matching the
// two index structures in the paper:
//
//   - AllocExtent + WriteSector: reserve a run of sectors up front and burn
//     them one at a time — how the WOBT grows a node in place (§2.1);
//   - Append: burn a variable-length consolidated run at the end of the
//     device — how the TSB-tree migrates an historical node (§3.4).
//
// If PlatterSectors > 0 the device behaves as a robot library: sector s
// lives on platter s/PlatterSectors, at most Drives platters are on line,
// and touching an off-line platter costs a simulated MountDelay.
// It is safe for concurrent use.
type WORMDisk struct {
	mu         sync.Mutex //tsb:latch level=8 name=worm-disk
	sectorSize int
	cost       CostModel

	sectors  [][]byte // payload per burned sector (nil = unburned)
	reserved uint64   // sectors handed out to extents or appends so far

	platterSectors uint64   // 0 = single always-mounted disk
	drives         int      // online slots when platterSectors > 0
	mounted        []uint64 // LRU list of mounted platters, most recent last

	stats WORMStats
}

// WORMConfig configures a WORMDisk.
type WORMConfig struct {
	SectorSize     int // bytes per sector (paper: "typically about one kilobyte")
	Cost           CostModel
	PlatterSectors uint64 // sectors per platter; 0 disables the library model
	Drives         int    // online drives for the library model
}

// NewWORMDisk returns an empty write-once device.
func NewWORMDisk(cfg WORMConfig) *WORMDisk {
	if cfg.SectorSize <= 0 {
		panic("storage: sector size must be positive")
	}
	drives := cfg.Drives
	if drives <= 0 {
		drives = 1
	}
	return &WORMDisk{
		sectorSize:     cfg.SectorSize,
		cost:           cfg.Cost,
		platterSectors: cfg.PlatterSectors,
		drives:         drives,
	}
}

// SectorSize returns the fixed sector size in bytes.
func (d *WORMDisk) SectorSize() int { return d.sectorSize }

// grow ensures the sector array covers sectors [0, n).
func (d *WORMDisk) grow(n uint64) {
	for uint64(len(d.sectors)) < n {
		d.sectors = append(d.sectors, nil)
	}
}

// touch simulates the access cost for reaching sector s, including a robot
// mount when the platter holding s is not on line.
func (d *WORMDisk) touch(s uint64) {
	d.cost.charge(&d.stats.SimTime, d.cost.OpticalAccess+d.cost.OpticalXfer)
	if d.platterSectors == 0 {
		return
	}
	platter := s / d.platterSectors
	for i, p := range d.mounted {
		if p == platter { // already mounted: refresh LRU position
			d.mounted = append(append(d.mounted[:i:i], d.mounted[i+1:]...), platter)
			return
		}
	}
	d.stats.Mounts++
	d.cost.charge(&d.stats.SimTime, d.cost.MountDelay)
	if len(d.mounted) >= d.drives {
		d.mounted = d.mounted[1:]
	}
	d.mounted = append(d.mounted, platter)
}

// AllocExtent reserves a run of n consecutive unburned sectors and returns
// the first sector number. The sectors remain unburned until WriteSector.
func (d *WORMDisk) AllocExtent(n int) (uint64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("storage: extent size %d", n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	first := d.reserved
	d.reserved += uint64(n)
	d.grow(d.reserved)
	return first, nil
}

// WriteSector burns data (at most one sector) into sector s. Burning the
// same sector twice returns ErrBurned: this is the invariant the whole
// design revolves around.
func (d *WORMDisk) WriteSector(s uint64, data []byte) error {
	if len(data) > d.sectorSize {
		return fmt.Errorf("%w: %d > sector size %d", ErrTooLarge, len(data), d.sectorSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s >= d.reserved {
		return fmt.Errorf("%w: sector %d not allocated", ErrBadPage, s)
	}
	if d.sectors[s] != nil {
		return fmt.Errorf("%w: sector %d", ErrBurned, s)
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	d.sectors[s] = buf
	d.stats.SectorWrites++
	d.stats.SectorsBurned++
	d.stats.PayloadBytes += uint64(len(data))
	d.stats.WastedBytes += uint64(d.sectorSize - len(data))
	d.touch(s)
	return nil
}

// ReadSector returns a copy of the payload burned into sector s.
func (d *WORMDisk) ReadSector(s uint64) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s >= uint64(len(d.sectors)) || d.sectors[s] == nil {
		return nil, fmt.Errorf("%w: sector %d", ErrUnwritten, s)
	}
	d.stats.SectorReads++
	d.touch(s)
	out := make([]byte, len(d.sectors[s]))
	copy(out, d.sectors[s])
	return out, nil
}

// IsBurned reports whether sector s has been written.
func (d *WORMDisk) IsBurned(s uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return s < uint64(len(d.sectors)) && d.sectors[s] != nil
}

// Append burns data as a consolidated run of sectors at the end of the
// device and returns its address. All sectors of the run are filled to
// capacity except possibly the last — the TSB-tree's high-utilization
// migration path (§3.4: "the historical data can be appended to a
// sequential file ... it is possible to come close" to exact utilization).
func (d *WORMDisk) Append(data []byte) (Addr, error) {
	if len(data) == 0 {
		return NilAddr, fmt.Errorf("storage: empty append")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	nsect := (len(data) + d.sectorSize - 1) / d.sectorSize
	first := d.reserved
	d.reserved += uint64(nsect)
	d.grow(d.reserved)
	for i := 0; i < nsect; i++ {
		lo := i * d.sectorSize
		hi := lo + d.sectorSize
		if hi > len(data) {
			hi = len(data)
		}
		buf := make([]byte, hi-lo)
		copy(buf, data[lo:hi])
		d.sectors[first+uint64(i)] = buf
		d.stats.SectorsBurned++
	}
	d.stats.Appends++
	d.stats.SectorWrites += uint64(nsect)
	d.stats.PayloadBytes += uint64(len(data))
	d.stats.WastedBytes += uint64(nsect*d.sectorSize - len(data))
	// One seek for the whole sequential run, plus transfer per sector.
	d.cost.charge(&d.stats.SimTime, d.cost.OpticalAccess+time.Duration(nsect)*d.cost.OpticalXfer)
	return Addr{Kind: KindWORM, Off: first, Len: uint32(len(data))}, nil
}

// ReadAt reads back the payload of a run written by Append (or, for extent
// nodes, the concatenation of the burned sectors starting at addr.Off
// covering addr.Len bytes).
func (d *WORMDisk) ReadAt(addr Addr) ([]byte, error) {
	if addr.Kind != KindWORM {
		return nil, fmt.Errorf("%w: non-WORM address %s", ErrBadPage, addr)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]byte, 0, addr.Len)
	s := addr.Off
	for uint32(len(out)) < addr.Len {
		if s >= uint64(len(d.sectors)) || d.sectors[s] == nil {
			return nil, fmt.Errorf("%w: sector %d", ErrUnwritten, s)
		}
		out = append(out, d.sectors[s]...)
		d.stats.SectorReads++
		s++
	}
	// One seek for the sequential run.
	d.touch(addr.Off)
	d.cost.charge(&d.stats.SimTime, time.Duration(s-addr.Off-1)*d.cost.OpticalXfer)
	if uint32(len(out)) < addr.Len {
		return nil, fmt.Errorf("%w: short run at %s", ErrUnwritten, addr)
	}
	return out[:addr.Len], nil
}

// Stats returns a snapshot of the accounting counters.
func (d *WORMDisk) Stats() WORMStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
