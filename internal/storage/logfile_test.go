package storage

import (
	"bytes"
	"errors"
	"testing"
)

// memLogFile is an in-memory LogFile for exercising the tear wrapper.
type memLogFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memLogFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memLogFile) Sync() error                 { m.syncs++; return nil }
func (m *memLogFile) Close() error                { m.closed = true; return nil }

func TestTornLogFileTearsAtBudget(t *testing.T) {
	inner := &memLogFile{}
	plan := NewTearPlan(10)
	f := NewTornLogFile(inner, plan)

	if n, err := f.Write([]byte("0123456")); err != nil || n != 7 {
		t.Fatalf("write before budget: n=%d err=%v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync before budget: %v", err)
	}
	// This write crosses the 10-byte budget: only 3 more bytes persist.
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write error = %v, want ErrInjected", err)
	}
	if n != 3 {
		t.Fatalf("crossing write persisted %d bytes, want 3", n)
	}
	if got := inner.buf.String(); got != "0123456abc" {
		t.Fatalf("durable bytes = %q, want %q", got, "0123456abc")
	}
	if !plan.Dead() {
		t.Fatal("plan should be dead after tearing")
	}
	// The device is dead: nothing further persists, syncs fail.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after death = %v, want ErrInjected", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after death = %v, want ErrInjected", err)
	}
	if got := inner.buf.String(); got != "0123456abc" {
		t.Fatalf("durable bytes after death = %q", got)
	}
	if err := f.Close(); err != nil || !inner.closed {
		t.Fatalf("close: err=%v closed=%v", err, inner.closed)
	}
}

func TestTearPlanSharedAcrossFiles(t *testing.T) {
	plan := NewTearPlan(5)
	a := NewTornLogFile(&memLogFile{}, plan)
	bInner := &memLogFile{}
	b := NewTornLogFile(bInner, plan)

	if _, err := a.Write([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	// 1 byte of budget left: the second file's write tears.
	n, err := b.Write([]byte("56"))
	if !errors.Is(err, ErrInjected) || n != 1 {
		t.Fatalf("shared tear: n=%d err=%v", n, err)
	}
	if got := bInner.buf.String(); got != "5" {
		t.Fatalf("second file durable bytes = %q, want %q", got, "5")
	}
	if _, err := a.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("first file should share the death: %v", err)
	}
}

func TestNilTearPlanPassesThrough(t *testing.T) {
	inner := &memLogFile{}
	f := NewTornLogFile(inner, nil)
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if inner.buf.String() != "hello" || inner.syncs != 1 {
		t.Fatalf("pass-through failed: %q syncs=%d", inner.buf.String(), inner.syncs)
	}
}
