package record

// Tenant namespaces: the service layer maps each tenant onto a disjoint
// slice of the one shared key space by prefixing every user key with an
// encoded tenant id. The encoding must be collision-proof — no tenant's
// prefix may ever be produced by another tenant's prefix plus user key
// bytes — and order-preserving, so range scans inside a tenant and
// shard routing across tenants both follow byte order. Both properties
// come from one escape:
//
//	tenant bytes:  0x00        -> 0x00 0xff   (escaped)
//	               b != 0x00   -> b
//	terminator:                   0x00 0x01
//
// Inside an escaped tenant a 0x00 is always followed by 0xff, so the
// 0x00 0x01 terminator cannot occur inside one, cannot be split across
// one's end (escape pairs are complete), and sorts below every escaped
// continuation (0x00 0xff and any b >= 0x01). Hence encoded prefixes
// are prefix-free — TenantPrefix(t2) is never a byte prefix of
// PrefixKey(t1, k) unless t1 == t2, whatever k holds — and the encoded
// order of tenants equals their byte order, with every key of a smaller
// tenant sorting below every key of a larger one. The fuzz target
// FuzzTenantNamespace exercises all of it.

import "bytes"

// tenant terminator, appended after the escaped tenant bytes.
const (
	nsEscape     = 0x00
	nsEscapedLow = 0xff // 0x00 inside a tenant encodes as 0x00 0xff
	nsTermLow    = 0x01 // terminator is 0x00 0x01
	nsTermHigh   = 0x02 // range end is 0x00 0x02 (nothing encodes to it)
)

// TenantPrefix returns the encoded, terminated prefix of tenant: the
// byte string every key of the tenant starts with. The empty tenant is
// a valid tenant with the two-byte prefix {0x00, 0x01}.
func TenantPrefix(tenant []byte) Key {
	p := make([]byte, 0, len(tenant)+2)
	for _, b := range tenant {
		if b == nsEscape {
			p = append(p, nsEscape, nsEscapedLow)
			continue
		}
		p = append(p, b)
	}
	return append(p, nsEscape, nsTermLow)
}

// PrefixKey maps user key k into tenant's namespace: TenantPrefix
// followed by the raw key bytes. Within one tenant the mapping is
// order-preserving (raw bytes compare like the originals), and across
// tenants the images are disjoint.
func PrefixKey(tenant []byte, k Key) Key {
	p := TenantPrefix(tenant)
	return append(p, k...)
}

// StripPrefix undoes PrefixKey: it returns the user key embedded in k
// and whether k belongs to tenant's namespace at all. The returned key
// aliases k. Because encoded prefixes are prefix-free, a key of one
// tenant never strips successfully under another, whatever bytes the
// embedded user key holds.
func StripPrefix(tenant []byte, k Key) (Key, bool) {
	p := TenantPrefix(tenant)
	if !bytes.HasPrefix(k, p) {
		return nil, false
	}
	return Key(k[len(p):]), true
}

// TenantRange returns the half-open key range [low, high) holding
// exactly tenant's keys: low is the tenant's prefix (its smallest
// possible key, the empty user key) and high replaces the terminator
// 0x00 0x01 with 0x00 0x02, which no encoding produces, so the bound is
// exclusive of every other tenant.
func TenantRange(tenant []byte) (low Key, high Bound) {
	low = TenantPrefix(tenant)
	h := append(Key(nil), low...)
	h[len(h)-1] = nsTermHigh
	return low, KeyBound(h)
}
