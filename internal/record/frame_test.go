package record

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 1000)}
	var buf []byte
	for _, p := range payloads {
		buf = AppendFrame(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		var got []byte
		var err error
		got, rest, err = DecodeFrame(rest, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}

	r := bytes.NewReader(buf)
	for i, want := range payloads {
		got, err := ReadFrame(r, 0)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("ReadFrame %d: got %q want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(r, 0); err != io.EOF {
		t.Fatalf("at clean boundary: got %v, want io.EOF", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	full := AppendFrame(nil, []byte("hello frame"))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut], 0); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("cut=%d: got %v, want ErrFrameTruncated", cut, err)
		}
		if cut == 0 {
			continue // a clean boundary is io.EOF for the stream reader
		}
		if _, err := ReadFrame(bytes.NewReader(full[:cut]), 0); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("ReadFrame cut=%d: got %v, want ErrFrameTruncated", cut, err)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	// A header claiming more than the caller's limit must fail before
	// the payload is touched — even when those bytes are present.
	buf := AppendFrame(nil, bytes.Repeat([]byte{1}, 100))
	if _, _, err := DecodeFrame(buf, 99); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("limit 99: got %v, want ErrFrameTooLarge", err)
	}
	if _, err := ReadFrame(bytes.NewReader(buf), 99); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ReadFrame limit 99: got %v, want ErrFrameTooLarge", err)
	}
	if _, _, err := DecodeFrame(buf, 100); err != nil {
		t.Fatalf("limit 100: %v", err)
	}
	// The absolute bound applies with no caller limit: a corrupt header
	// claiming gigabytes must not trigger an allocation.
	hdr := make([]byte, FrameHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(MaxFramePayload+1))
	if _, err := ReadFrame(bytes.NewReader(hdr), 0); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("absolute bound: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameCRC(t *testing.T) {
	buf := AppendFrame(nil, []byte("checksummed"))
	for i := FrameHeaderSize; i < len(buf); i++ {
		bad := bytes.Clone(buf)
		bad[i] ^= 0x40
		if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("flip %d: got %v, want ErrFrameCRC", i, err)
		}
		if _, err := ReadFrame(bytes.NewReader(bad), 0); !errors.Is(err, ErrFrameCRC) {
			t.Fatalf("ReadFrame flip %d: got %v, want ErrFrameCRC", i, err)
		}
	}
}

// FuzzFrameDecode is the wire-decoder robustness target: whatever bytes
// arrive — torn frames, oversized length headers, corrupted payloads —
// the decoder must return one of the typed errors or a payload that
// re-encodes to exactly the bytes consumed. It must never panic, and
// never read or allocate past the caller's limit.
func FuzzFrameDecode(f *testing.F) {
	f.Add(AppendFrame(nil, []byte("seed payload")), 0)
	f.Add(AppendFrame(nil, nil), 64)
	f.Add(AppendFrame(nil, bytes.Repeat([]byte{7}, 300)), 128) // over the caller's limit
	f.Add(AppendFrame(nil, []byte("torn"))[:9], 0)             // mid-payload tear
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}, 0)       // huge claimed length
	bad := AppendFrame(nil, []byte("crc"))
	bad[len(bad)-1] ^= 1
	f.Add(bad, 0) // corrupted payload
	f.Add(append(AppendFrame(nil, []byte("first")), 0x01, 0x02), 0)
	f.Fuzz(func(t *testing.T, data []byte, maxPayload int) {
		if maxPayload < 0 {
			maxPayload = -maxPayload
		}
		maxPayload %= 1 << 16
		payload, rest, err := DecodeFrame(data, maxPayload)
		if err != nil {
			if !errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrFrameCRC) {
				t.Fatalf("untyped error: %v", err)
			}
			if len(rest) != len(data) {
				t.Fatalf("error consumed input: %d of %d left", len(rest), len(data))
			}
		} else {
			if maxPayload > 0 && len(payload) > maxPayload {
				t.Fatalf("payload %d over limit %d", len(payload), maxPayload)
			}
			consumed := len(data) - len(rest)
			if !bytes.Equal(AppendFrame(nil, payload), data[:consumed]) {
				t.Fatalf("re-encode mismatch over %d consumed bytes", consumed)
			}
		}
		// The stream reader must agree with the slice decoder, except
		// that a zero-byte stream is a clean EOF.
		sp, serr := ReadFrame(bytes.NewReader(data), maxPayload)
		if err == nil {
			if serr != nil || !bytes.Equal(sp, payload) {
				t.Fatalf("ReadFrame disagrees: %q %v vs %q", sp, serr, payload)
			}
		} else if serr == nil {
			t.Fatalf("ReadFrame succeeded where DecodeFrame failed: %v", err)
		}
	})
}
