package record

import "fmt"

// Shard-boundary key codec.
//
// The sharded engine partitions the key space into n contiguous ranges so
// that range queries over shards merge by simple concatenation in shard
// order. Boundaries are derived from the first two key bytes: the 16-bit
// prefix space [0, 65536) is divided as evenly as integer arithmetic
// allows, and each boundary value is encoded as a key with any trailing
// zero byte trimmed. Trimming matters for correctness, not just size: the
// boundary for prefix 0x6100 must be "a", not "a\x00", because the
// one-byte key "a" sorts before "a\x00" yet has prefix value 0x6100 and
// must belong to the shard that starts there.
//
// MaxShards bounds n so every shard spans at least one prefix value.
const MaxShards = 1 << 16

const shardPrefixSpace = 1 << 16

// boundaryPrefix returns the 16-bit prefix value at which shard i of n
// begins.
func boundaryPrefix(i, n int) uint32 {
	return uint32(uint64(i) * shardPrefixSpace / uint64(n))
}

// keyPrefix returns the key's 16-bit routing prefix: the first two bytes,
// zero-padded on the right. The empty key has prefix 0.
func keyPrefix(k Key) uint32 {
	var v uint32
	if len(k) > 0 {
		v = uint32(k[0]) << 8
	}
	if len(k) > 1 {
		v |= uint32(k[1])
	}
	return v
}

func checkShardCount(n int) {
	if n < 1 || n > MaxShards {
		panic(fmt.Sprintf("record: shard count %d outside [1,%d]", n, MaxShards))
	}
}

// ShardBoundary returns the smallest key belonging to shard i of n.
// Shard 0 begins at the empty key (minus infinity); for i == n the
// function returns nil too, but callers should use ShardRange, which
// reports the final shard's open upper bound explicitly.
func ShardBoundary(i, n int) Key {
	checkShardCount(n)
	if i < 0 || i > n {
		panic(fmt.Sprintf("record: shard index %d outside [0,%d]", i, n))
	}
	if i == 0 || i == n {
		return nil
	}
	v := boundaryPrefix(i, n)
	if v&0xff == 0 {
		return Key{byte(v >> 8)}
	}
	return Key{byte(v >> 8), byte(v)}
}

// ShardOfKey returns the index of the shard of n that owns key k. It is
// consistent with ShardBoundary: ShardBoundary(i,n) <= k < ShardBoundary(i+1,n)
// lexicographically.
func ShardOfKey(k Key, n int) int {
	checkShardCount(n)
	if n == 1 {
		return 0
	}
	v := keyPrefix(k)
	i := int(uint64(v) * uint64(n) / shardPrefixSpace)
	// Integer division above is a close guess; settle on the exact
	// half-open interval.
	for i+1 < n && boundaryPrefix(i+1, n) <= v {
		i++
	}
	for i > 0 && boundaryPrefix(i, n) > v {
		i--
	}
	return i
}

// ShardRange returns the half-open key range [low, high) that shard i of n
// is responsible for.
func ShardRange(i, n int) (low Key, high Bound) {
	checkShardCount(n)
	if i < 0 || i >= n {
		panic(fmt.Sprintf("record: shard index %d outside [0,%d)", i, n))
	}
	low = ShardBoundary(i, n)
	if i == n-1 {
		return low, InfiniteBound()
	}
	return low, KeyBound(ShardBoundary(i+1, n))
}
