// Package record defines the fundamental value types shared by every
// component of the multiversion store: keys, timestamps, version records,
// key×time rectangles, and the binary page codec used to persist nodes on
// the simulated magnetic and write-once devices.
//
// The types here correspond directly to the vocabulary of Lomet & Salzberg,
// "Access Methods for Multiversion Data" (SIGMOD 1989): a record version is
// a <key, timestamp, data> triple from a rollback database (timestamps are
// transaction commit times, data is stepwise constant), and an index entry
// describes a node responsible for a key range over a time interval.
package record

import (
	"bytes"
	"fmt"
	"math"
)

// Timestamp is a transaction commit time. The database is a rollback
// database in the sense of Snodgrass & Ahn: versions are stamped with the
// commit time of the transaction that wrote them, and times assigned to a
// key's versions are strictly increasing.
type Timestamp uint64

const (
	// TimeZero is the origin of time; no committed version carries it.
	TimeZero Timestamp = 0
	// TimeInfinity is the open upper bound of a time interval that is
	// still growing (a current node's rectangle, or a current index
	// entry). No committed version carries it.
	TimeInfinity Timestamp = math.MaxUint64
	// TimePending marks a version written by a transaction that has not
	// yet committed. Pending versions sort after every committed version
	// of the same key, are invisible to read-only transactions, and are
	// never migrated to the historical database (paper §4), so they can
	// always be erased if the transaction aborts.
	TimePending Timestamp = math.MaxUint64 - 1
)

// IsCommitted reports whether t is a real commit time (as opposed to the
// pending sentinel or infinity).
func (t Timestamp) IsCommitted() bool { return t > TimeZero && t < TimePending }

// String renders the timestamp; sentinels print symbolically.
func (t Timestamp) String() string {
	switch t {
	case TimeInfinity:
		return "∞"
	case TimePending:
		return "pending"
	default:
		return fmt.Sprintf("%d", uint64(t))
	}
}

// Key is a byte-string key ordered lexicographically. The empty key is the
// smallest key ("minus infinity" in the paper's root entries).
type Key []byte

// Compare returns -1, 0, or +1 comparing k with other lexicographically.
func (k Key) Compare(other Key) int { return bytes.Compare(k, other) }

// Less reports whether k sorts strictly before other.
func (k Key) Less(other Key) bool { return bytes.Compare(k, other) < 0 }

// Equal reports whether the two keys are byte-wise identical.
func (k Key) Equal(other Key) bool { return bytes.Equal(k, other) }

// Successor returns the smallest key strictly greater than k: k followed
// by a zero byte. It is the resume key for exclusive-low pagination
// ("everything after the last row I saw").
func (k Key) Successor() Key {
	out := make(Key, len(k)+1)
	copy(out, k)
	return out
}

// Clone returns an independent copy of the key.
func (k Key) Clone() Key {
	if k == nil {
		return nil
	}
	out := make(Key, len(k))
	copy(out, k)
	return out
}

// String renders the key for debugging; printable keys are shown verbatim.
func (k Key) String() string {
	if len(k) == 0 {
		return "-inf"
	}
	for _, b := range k {
		if b < 0x20 || b > 0x7e {
			return fmt.Sprintf("%x", []byte(k))
		}
	}
	return string(k)
}

// Uint64Key encodes v as an 8-byte big-endian key so that numeric order
// matches lexicographic order.
func Uint64Key(v uint64) Key {
	k := make(Key, 8)
	for i := 7; i >= 0; i-- {
		k[i] = byte(v)
		v >>= 8
	}
	return k
}

// KeyUint64 decodes a key produced by Uint64Key.
func KeyUint64(k Key) uint64 {
	var v uint64
	for _, b := range k {
		v = v<<8 | uint64(b)
	}
	return v
}

// StringKey converts a string to a Key.
func StringKey(s string) Key { return Key(s) }

// Bound is a key-space bound: either a concrete key or +infinity. The zero
// value is the empty key, i.e. the smallest possible bound.
type Bound struct {
	key Key
	inf bool
}

// KeyBound returns a finite bound at k.
func KeyBound(k Key) Bound { return Bound{key: k} }

// InfiniteBound returns the +infinity bound that closes the key space.
func InfiniteBound() Bound { return Bound{inf: true} }

// IsInfinite reports whether b is +infinity.
func (b Bound) IsInfinite() bool { return b.inf }

// Key returns the bound's key; it must not be called on +infinity.
func (b Bound) Key() Key {
	if b.inf {
		panic("record: Key() on infinite bound")
	}
	return b.key
}

// CompareKey compares the bound with a concrete key: -1 if the bound sorts
// before k, 0 if equal, +1 if after. +infinity sorts after every key.
func (b Bound) CompareKey(k Key) int {
	if b.inf {
		return 1
	}
	return bytes.Compare(b.key, k)
}

// Compare orders two bounds.
func (b Bound) Compare(other Bound) int {
	switch {
	case b.inf && other.inf:
		return 0
	case b.inf:
		return 1
	case other.inf:
		return -1
	default:
		return bytes.Compare(b.key, other.key)
	}
}

// String renders the bound.
func (b Bound) String() string {
	if b.inf {
		return "+inf"
	}
	return b.key.String()
}

// Rect is a half-open rectangle in key×time space:
// keys in [LowKey, HighKey), times in [Start, End). A current node's
// rectangle has End == TimeInfinity; a node spanning the whole key space
// has LowKey == empty and HighKey == +infinity.
//
// The paper derives these ranges implicitly from the split history of each
// node; we store them explicitly (see DESIGN.md, "Faithfulness note"). The
// §3.5 Index Node Keyspace Split Rule speaks directly in terms of the
// "upper bound" and "lower bound" of each entry's key range, so the
// information content is identical.
type Rect struct {
	LowKey  Key
	HighKey Bound
	Start   Timestamp
	End     Timestamp
}

// WholeSpace returns the rectangle covering every key at every time.
func WholeSpace() Rect {
	return Rect{LowKey: nil, HighKey: InfiniteBound(), Start: TimeZero, End: TimeInfinity}
}

// Contains reports whether the point (k, t) lies inside the rectangle.
// Pending versions are treated as living at the current (open) end of time:
// they are inside any rectangle whose End is infinite.
func (r Rect) Contains(k Key, t Timestamp) bool {
	if bytes.Compare(k, r.LowKey) < 0 {
		return false
	}
	if r.HighKey.CompareKey(k) <= 0 {
		return false
	}
	if t == TimePending {
		return r.End == TimeInfinity
	}
	return t >= r.Start && t < r.End
}

// ContainsKey reports whether k lies inside the key range, ignoring time.
func (r Rect) ContainsKey(k Key) bool {
	return bytes.Compare(k, r.LowKey) >= 0 && r.HighKey.CompareKey(k) > 0
}

// ContainsTime reports whether t lies inside the time interval.
func (r Rect) ContainsTime(t Timestamp) bool {
	if t == TimePending {
		return r.End == TimeInfinity
	}
	return t >= r.Start && t < r.End
}

// OverlapsKeyRange reports whether the key interval [low, high) intersects
// the rectangle's key range. A nil high bound means +infinity... callers
// pass a Bound so there is no ambiguity.
func (r Rect) OverlapsKeyRange(low Key, high Bound) bool {
	// r.LowKey < high and low < r.HighKey
	if high.CompareKey(r.LowKey) <= 0 {
		return false
	}
	return r.HighKey.CompareKey(low) > 0
}

// SplitAtKey cuts the rectangle at key s, returning the left ([LowKey, s))
// and right ([s, HighKey)) halves. s must lie strictly inside the key range.
func (r Rect) SplitAtKey(s Key) (left, right Rect) {
	if !r.ContainsKey(s) || s.Equal(r.LowKey) {
		panic(fmt.Sprintf("record: split key %s outside rect %s", s, r))
	}
	left = r
	left.HighKey = KeyBound(s.Clone())
	right = r
	right.LowKey = s.Clone()
	return left, right
}

// SplitAtTime cuts the rectangle at time t, returning the older ([Start, t))
// and newer ([t, End)) halves. t must lie strictly inside the time interval.
func (r Rect) SplitAtTime(t Timestamp) (older, newer Rect) {
	if t <= r.Start || t >= r.End {
		panic(fmt.Sprintf("record: split time %v outside rect %s", t, r))
	}
	older = r
	older.End = t
	newer = r
	newer.Start = t
	return older, newer
}

// Intersect returns the intersection of two rectangles and whether it is
// non-empty.
func (r Rect) Intersect(other Rect) (Rect, bool) {
	out := r
	if bytes.Compare(other.LowKey, out.LowKey) > 0 {
		out.LowKey = other.LowKey
	}
	if other.HighKey.Compare(out.HighKey) < 0 {
		out.HighKey = other.HighKey
	}
	if other.Start > out.Start {
		out.Start = other.Start
	}
	if other.End < out.End {
		out.End = other.End
	}
	if out.HighKey.CompareKey(out.LowKey) <= 0 || out.End <= out.Start {
		return Rect{}, false
	}
	return out, true
}

// Equal reports whether two rectangles are identical.
func (r Rect) Equal(other Rect) bool {
	return r.LowKey.Equal(other.LowKey) &&
		r.HighKey.Compare(other.HighKey) == 0 &&
		r.Start == other.Start && r.End == other.End
}

// IsCurrent reports whether the rectangle is open-ended in time, i.e.
// describes a node of the current database.
func (r Rect) IsCurrent() bool { return r.End == TimeInfinity }

// String renders the rectangle as [low,high)x[start,end).
func (r Rect) String() string {
	return fmt.Sprintf("[%s,%s)x[%s,%s)", r.LowKey, r.HighKey, r.Start, r.End)
}

// Version is one version of one record: the unit stored in leaf nodes.
// Updates never overwrite: they insert a new Version with a later Time and
// the same Key (paper §2.1). A delete inserts a Tombstone version so the
// history remains complete under the non-deletion policy.
type Version struct {
	Key       Key
	Time      Timestamp // commit time, or TimePending if uncommitted
	TxnID     uint64    // issuing transaction; 0 once committed data is consolidated
	Tombstone bool
	Value     []byte
}

// IsPending reports whether the version was written by a transaction that
// has not committed.
func (v Version) IsPending() bool { return v.Time == TimePending }

// Clone returns a deep copy of the version.
func (v Version) Clone() Version {
	out := v
	out.Key = v.Key.Clone()
	if v.Value != nil {
		out.Value = append([]byte(nil), v.Value...)
	}
	return out
}

// EncodedSize returns the exact number of bytes the version occupies on a
// page.
func (v Version) EncodedSize() int {
	e := Encoder{}
	e.Version(v)
	return e.Len()
}

// String renders the version for figures and debugging.
func (v Version) String() string {
	val := string(v.Value)
	if v.Tombstone {
		val = "<deleted>"
	}
	return fmt.Sprintf("%s %s T=%s", v.Key, val, v.Time)
}

// Before orders versions by (key, time) with pending versions last within
// a key. This is the canonical leaf ordering of current TSB nodes.
func (v Version) Before(other Version) bool {
	if c := v.Key.Compare(other.Key); c != 0 {
		return c < 0
	}
	return v.Time < other.Time
}
