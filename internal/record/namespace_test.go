package record

import (
	"bytes"
	"testing"
)

func TestNamespaceRoundTrip(t *testing.T) {
	tenants := [][]byte{nil, {}, []byte("acme"), {0x00}, {0x00, 0x01}, {0x00, 0xff}, []byte("a\x00b")}
	keys := []Key{nil, {}, StringKey("user/1"), {0x00}, {0x00, 0x01}, {0x00, 0x02}, {0xff, 0xff}}
	for _, tn := range tenants {
		for _, k := range keys {
			pk := PrefixKey(tn, k)
			got, ok := StripPrefix(tn, pk)
			if !ok || !bytes.Equal(got, k) {
				t.Fatalf("tenant %x key %x: strip got %x ok=%v", tn, k, got, ok)
			}
			low, high := TenantRange(tn)
			if pk.Compare(low) < 0 || high.CompareKey(pk) <= 0 {
				t.Fatalf("tenant %x key %x: %x outside [%x, %v)", tn, k, pk, low, high)
			}
		}
	}
}

// TestNamespaceCollision drives the escape's reason to exist: without
// it, tenant "" holding key {0x00,0x01,...} would collide with keys of
// a tenant whose encoding starts the same way.
func TestNamespaceCollision(t *testing.T) {
	cases := []struct{ t1, t2 []byte }{
		{nil, []byte{0x00}},
		{[]byte{0x00}, []byte{0x00, 0x00}},
		{[]byte("a"), []byte("a\x00")},
		{[]byte("a"), []byte("ab")},
		{[]byte("a\x00"), []byte("a\x01")},
	}
	keys := []Key{nil, {0x00, 0x01}, {0x00, 0x01, 0x78}, {0x00, 0xff}, {0x01}, {0xff}}
	for _, c := range cases {
		for _, k := range keys {
			if _, ok := StripPrefix(c.t2, PrefixKey(c.t1, k)); ok {
				t.Fatalf("tenant %x key %x strips under tenant %x", c.t1, k, c.t2)
			}
			if _, ok := StripPrefix(c.t1, PrefixKey(c.t2, k)); ok {
				t.Fatalf("tenant %x key %x strips under tenant %x", c.t2, k, c.t1)
			}
		}
	}
}

func TestNamespaceOrder(t *testing.T) {
	tn := []byte("ord")
	keys := []Key{nil, {0x00}, {0x00, 0x00}, {0x00, 0x01}, {0x01}, StringKey("a"), StringKey("a\x00"), StringKey("b"), {0xff}}
	for i, a := range keys {
		for j, b := range keys {
			want := a.Compare(b)
			if got := PrefixKey(tn, a).Compare(PrefixKey(tn, b)); sign(got) != sign(want) {
				t.Fatalf("order not preserved: keys %d,%d: %d vs %d", i, j, got, want)
			}
		}
	}
	// Tenant order carries over: every key of the smaller tenant sorts
	// below every key of the larger one.
	tenants := [][]byte{nil, {0x00}, {0x00, 0x00}, {0x00, 0x01}, {0x01}, []byte("a"), []byte("a\x00"), []byte("a\x01"), []byte("ab")}
	for i := 0; i < len(tenants); i++ {
		for j := i + 1; j < len(tenants); j++ {
			lo, hi := tenants[i], tenants[j]
			if bytes.Compare(lo, hi) > 0 {
				lo, hi = hi, lo
			}
			if !PrefixKey(lo, Key{0xff, 0xff, 0xff}).Less(PrefixKey(hi, nil)) {
				t.Fatalf("tenant %x keys not all below tenant %x keys", lo, hi)
			}
		}
	}
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	}
	return 0
}

// FuzzTenantNamespace proves the namespace contract over arbitrary
// tenants and keys: round-trip, order preservation within a tenant,
// range containment, and cross-tenant disjointness (no strip under the
// wrong tenant, full separation of the encoded ranges).
func FuzzTenantNamespace(f *testing.F) {
	f.Add([]byte("acme"), []byte("beta"), []byte("k1"), []byte("k2"))
	f.Add([]byte{}, []byte{0x00}, []byte{0x00, 0x01}, []byte{})
	f.Add([]byte("a"), []byte("a\x00"), []byte{0xff}, []byte{0x00, 0x01, 0x78})
	f.Add([]byte{0x00, 0xff}, []byte{0x00, 0x00}, []byte{0x01}, []byte{0x02})
	f.Fuzz(func(t *testing.T, t1, t2, k1b, k2b []byte) {
		k1, k2 := Key(k1b), Key(k2b)
		p1 := PrefixKey(t1, k1)
		if got, ok := StripPrefix(t1, p1); !ok || !bytes.Equal(got, k1) {
			t.Fatalf("round trip: %x -> %x -> %x ok=%v", k1, p1, got, ok)
		}
		if sign(p1.Compare(PrefixKey(t1, k2))) != sign(k1.Compare(k2)) {
			t.Fatalf("order not preserved for %x,%x under %x", k1, k2, t1)
		}
		low, high := TenantRange(t1)
		if p1.Compare(low) < 0 || high.CompareKey(p1) <= 0 {
			t.Fatalf("%x outside its tenant range [%x,%v)", p1, low, high)
		}
		if bytes.Equal(t1, t2) {
			return
		}
		if _, ok := StripPrefix(t2, p1); ok {
			t.Fatalf("tenant %x key strips under tenant %x", t1, t2)
		}
		low2, high2 := TenantRange(t2)
		if p1.Compare(low2) >= 0 && high2.CompareKey(p1) > 0 {
			t.Fatalf("tenant %x key %x inside tenant %x's range", t1, p1, t2)
		}
		// Full separation: the smaller tenant's largest conceivable key
		// still sorts below the larger tenant's smallest.
		lo, hi := t1, t2
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		if !PrefixKey(lo, append(k1.Clone(), 0xff, 0xff)).Less(TenantPrefix(hi)) {
			t.Fatalf("tenants %x and %x interleave", lo, hi)
		}
	})
}
