package record

// Property-based tests (testing/quick) on the key×time geometry that the
// TSB-tree's correctness rests on: splits partition, intersection is
// sound, and containment is consistent.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genRect produces a random well-formed rectangle.
func genRect(rng *rand.Rand) Rect {
	lowLen := rng.Intn(4)
	low := make(Key, lowLen)
	for i := range low {
		low[i] = byte('a' + rng.Intn(4))
	}
	r := Rect{LowKey: low}
	if rng.Intn(3) == 0 {
		r.HighKey = InfiniteBound()
	} else {
		// High key: low plus a strictly greater suffix.
		high := append(low.Clone(), byte('a'+rng.Intn(4)+1))
		r.HighKey = KeyBound(high)
	}
	r.Start = Timestamp(rng.Intn(100))
	if rng.Intn(3) == 0 {
		r.End = TimeInfinity
	} else {
		r.End = r.Start + 1 + Timestamp(rng.Intn(100))
	}
	return r
}

func genPoint(rng *rand.Rand) (Key, Timestamp) {
	n := rng.Intn(5)
	k := make(Key, n)
	for i := range k {
		k[i] = byte('a' + rng.Intn(5))
	}
	return k, Timestamp(rng.Intn(220))
}

type quickRect struct{ R Rect }

// Generate implements quick.Generator.
func (quickRect) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickRect{R: genRect(rng)})
}

type quickPoint struct {
	K Key
	T Timestamp
}

// Generate implements quick.Generator.
func (quickPoint) Generate(rng *rand.Rand, _ int) reflect.Value {
	k, ts := genPoint(rng)
	return reflect.ValueOf(quickPoint{K: k, T: ts})
}

func TestQuickSplitAtTimePartitions(t *testing.T) {
	f := func(qr quickRect, qp quickPoint, cut uint8) bool {
		r := qr.R
		span := uint64(200)
		T := r.Start + 1 + Timestamp(uint64(cut)%span)
		if T <= r.Start || T >= r.End {
			return true // vacuous: cut outside
		}
		older, newer := r.SplitAtTime(T)
		if !r.Contains(qp.K, qp.T) {
			// Points outside stay outside both halves.
			return !older.Contains(qp.K, qp.T) && !newer.Contains(qp.K, qp.T)
		}
		inOld := older.Contains(qp.K, qp.T)
		inNew := newer.Contains(qp.K, qp.T)
		return inOld != inNew // exactly one half
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickSplitAtKeyPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		r := genRect(rng)
		// Build a split key strictly inside the key range.
		s := append(r.LowKey.Clone(), byte('a'+rng.Intn(5)))
		if !r.ContainsKey(s) || s.Equal(r.LowKey) {
			continue
		}
		left, right := r.SplitAtKey(s)
		k, ts := genPoint(rng)
		if !r.Contains(k, ts) {
			if left.Contains(k, ts) || right.Contains(k, ts) {
				t.Fatalf("outside point in a half: %s split %s point (%s,%v)", r, s, k, ts)
			}
			continue
		}
		if left.Contains(k, ts) == right.Contains(k, ts) {
			t.Fatalf("point (%s,%v) not in exactly one half of %s split at %s", k, ts, r, s)
		}
	}
}

func TestQuickIntersectSound(t *testing.T) {
	f := func(a, b quickRect, p quickPoint) bool {
		inter, ok := a.R.Intersect(b.R)
		inBoth := a.R.Contains(p.K, p.T) && b.R.Contains(p.K, p.T)
		if !ok {
			return !inBoth // empty intersection admits no common points
		}
		return inter.Contains(p.K, p.T) == inBoth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectCommutes(t *testing.T) {
	f := func(a, b quickRect) bool {
		x, okx := a.R.Intersect(b.R)
		y, oky := b.R.Intersect(a.R)
		if okx != oky {
			return false
		}
		return !okx || x.Equal(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectSelfIsIdentity(t *testing.T) {
	f := func(a quickRect) bool {
		x, ok := a.R.Intersect(a.R)
		return ok && x.Equal(a.R)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickContainsConsistentWithParts(t *testing.T) {
	f := func(a quickRect, p quickPoint) bool {
		want := a.R.ContainsKey(p.K) && a.R.ContainsTime(p.T)
		return a.R.Contains(p.K, p.T) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapsKeyRangeAgreesWithWitness(t *testing.T) {
	f := func(a, b quickRect, p quickPoint) bool {
		// If a point's key is in both rects' ranges, they overlap.
		if a.R.ContainsKey(p.K) && b.R.ContainsKey(p.K) {
			return a.R.OverlapsKeyRange(b.R.LowKey, b.R.HighKey)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Error(err)
	}
}

func TestQuickVersionOrderingTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vs := make([]Version, 200)
	for i := range vs {
		k, _ := genPoint(rng)
		vs[i] = Version{Key: k, Time: Timestamp(rng.Intn(50))}
	}
	// Before must be a strict weak ordering: irreflexive and asymmetric.
	for _, a := range vs[:50] {
		if a.Before(a) {
			t.Fatal("Before not irreflexive")
		}
		for _, b := range vs[:50] {
			if a.Before(b) && b.Before(a) {
				t.Fatalf("Before not asymmetric: %v vs %v", a, b)
			}
		}
	}
}
