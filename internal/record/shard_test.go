package record

import (
	"math/rand"
	"testing"
)

func TestShardBoundariesStrictlyIncreasing(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 100, 255, 256, 257, 4096, MaxShards} {
		prev := Key(nil)
		for i := 1; i < n; i++ {
			b := ShardBoundary(i, n)
			if len(b) == 0 {
				t.Fatalf("n=%d: boundary %d is empty", n, i)
			}
			if b[len(b)-1] == 0 {
				t.Fatalf("n=%d: boundary %d=%x has a trailing zero byte", n, i, b)
			}
			if !prev.Less(b) {
				t.Fatalf("n=%d: boundary %d=%x not after %x", n, i, b, prev)
			}
			prev = b
		}
	}
}

func TestShardOfKeyMatchesBoundaries(t *testing.T) {
	keys := []Key{
		nil, Key{0}, Key{0, 0}, Key{0, 1}, Key("a"), Key("a\x00"), Key("a\x00x"),
		Key("a\x01"), Key("key0000"), Key("zzzz"), Key{0xff}, Key{0xff, 0xff, 0xff},
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		k := make(Key, rng.Intn(6))
		rng.Read(k)
		keys = append(keys, k)
	}
	for _, n := range []int{1, 2, 3, 7, 8, 64, 256, 300, 65535} {
		for _, k := range keys {
			i := ShardOfKey(k, n)
			if i < 0 || i >= n {
				t.Fatalf("n=%d key=%x: shard %d out of range", n, k, i)
			}
			low, high := ShardRange(i, n)
			if k.Less(low) || high.CompareKey(k) <= 0 {
				t.Fatalf("n=%d key=%x: shard %d range [%s,%s) does not contain key",
					n, k, i, low, high)
			}
		}
	}
}

func TestShardRangesTileKeySpace(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 256, 1000} {
		low0, _ := ShardRange(0, n)
		if len(low0) != 0 {
			t.Fatalf("n=%d: shard 0 starts at %x, want -inf", n, low0)
		}
		for i := 0; i < n-1; i++ {
			_, high := ShardRange(i, n)
			nextLow, _ := ShardRange(i+1, n)
			if high.IsInfinite() || !high.Key().Equal(nextLow) {
				t.Fatalf("n=%d: shard %d ends at %s, shard %d starts at %x", n, i, high, i+1, nextLow)
			}
		}
		_, last := ShardRange(n-1, n)
		if !last.IsInfinite() {
			t.Fatalf("n=%d: last shard ends at %s, want +inf", n, last)
		}
	}
}

// TestShardBoundaryCodecRoundTrip pushes every boundary key through the
// page codec: boundary keys become rectangle bounds in sharded index
// metadata, so they must survive the Key/Bound encoders byte-identically.
func TestShardBoundaryCodecRoundTrip(t *testing.T) {
	for _, n := range []int{2, 8, 256, 4096} {
		for i := 0; i <= n; i += 1 + n/64 {
			b := ShardBoundary(min(i, n), n)
			e := NewEncoder(nil)
			e.Key(b)
			e.Bound(KeyBound(b))
			d := NewDecoder(e.Bytes())
			got := d.Key()
			gotBound := d.Bound()
			if d.Err() != nil {
				t.Fatalf("n=%d i=%d: decode: %v", n, i, d.Err())
			}
			if !got.Equal(b) || gotBound.CompareKey(b) != 0 {
				t.Fatalf("n=%d i=%d: round trip %x -> %x / %s", n, i, b, got, gotBound)
			}
		}
	}
}
