package record

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimestampSentinels(t *testing.T) {
	if TimeZero.IsCommitted() {
		t.Error("TimeZero must not be committed")
	}
	if TimePending.IsCommitted() {
		t.Error("TimePending must not be committed")
	}
	if TimeInfinity.IsCommitted() {
		t.Error("TimeInfinity must not be committed")
	}
	if !Timestamp(1).IsCommitted() {
		t.Error("1 should be a committed time")
	}
	if got := TimeInfinity.String(); got != "∞" {
		t.Errorf("TimeInfinity.String() = %q", got)
	}
	if got := TimePending.String(); got != "pending" {
		t.Errorf("TimePending.String() = %q", got)
	}
	if got := Timestamp(42).String(); got != "42" {
		t.Errorf("Timestamp(42).String() = %q", got)
	}
}

func TestKeyOrdering(t *testing.T) {
	cases := []struct {
		a, b Key
		want int
	}{
		{nil, nil, 0},
		{nil, Key("a"), -1},
		{Key("a"), nil, 1},
		{Key("a"), Key("b"), -1},
		{Key("b"), Key("a"), 1},
		{Key("a"), Key("a"), 0},
		{Key("a"), Key("ab"), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("Less(%s,%s) = %v", c.a, c.b, got)
		}
		if got := c.a.Equal(c.b); got != (c.want == 0) {
			t.Errorf("Equal(%s,%s) = %v", c.a, c.b, got)
		}
	}
}

func TestUint64KeyOrderMatchesNumericOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		ka, kb := Uint64Key(a), Uint64Key(b)
		switch {
		case a < b:
			return ka.Compare(kb) < 0
		case a > b:
			return ka.Compare(kb) > 0
		default:
			return ka.Compare(kb) == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64KeyRoundTrip(t *testing.T) {
	f := func(v uint64) bool { return KeyUint64(Uint64Key(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyClone(t *testing.T) {
	k := Key("hello")
	c := k.Clone()
	c[0] = 'H'
	if !k.Equal(Key("hello")) {
		t.Error("Clone aliases the original")
	}
	if Key(nil).Clone() != nil {
		t.Error("nil key should clone to nil")
	}
}

func TestBoundComparisons(t *testing.T) {
	inf := InfiniteBound()
	a := KeyBound(Key("a"))
	b := KeyBound(Key("b"))
	if !inf.IsInfinite() || a.IsInfinite() {
		t.Fatal("IsInfinite wrong")
	}
	if inf.CompareKey(Key("zzz")) != 1 {
		t.Error("+inf must sort after every key")
	}
	if a.CompareKey(Key("a")) != 0 || a.CompareKey(Key("b")) != -1 {
		t.Error("CompareKey wrong for finite bound")
	}
	if inf.Compare(inf) != 0 || a.Compare(inf) != -1 || inf.Compare(a) != 1 || a.Compare(b) != -1 {
		t.Error("Bound.Compare ordering wrong")
	}
	if got := inf.String(); got != "+inf" {
		t.Errorf("inf.String() = %q", got)
	}
}

func TestBoundKeyPanicsOnInfinity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic calling Key() on infinite bound")
		}
	}()
	InfiniteBound().Key()
}

func TestRectContains(t *testing.T) {
	r := Rect{LowKey: Key("b"), HighKey: KeyBound(Key("m")), Start: 10, End: 20}
	cases := []struct {
		k    Key
		t    Timestamp
		want bool
	}{
		{Key("b"), 10, true},
		{Key("b"), 9, false},
		{Key("b"), 20, false},
		{Key("a"), 15, false},
		{Key("m"), 15, false},
		{Key("lzz"), 19, true},
		{Key("c"), TimePending, false}, // closed rect excludes pending
	}
	for _, c := range cases {
		if got := r.Contains(c.k, c.t); got != c.want {
			t.Errorf("Contains(%s,%s) = %v, want %v", c.k, c.t, got, c.want)
		}
	}
	cur := Rect{LowKey: nil, HighKey: InfiniteBound(), Start: 5, End: TimeInfinity}
	if !cur.Contains(Key("x"), TimePending) {
		t.Error("current rect must contain pending versions")
	}
	if !cur.ContainsTime(TimePending) {
		t.Error("current rect ContainsTime(pending) must be true")
	}
	if r.ContainsTime(TimePending) {
		t.Error("closed rect must not contain pending time")
	}
}

func TestWholeSpaceContainsEverything(t *testing.T) {
	f := func(k []byte, t uint64) bool {
		return WholeSpace().Contains(Key(k), Timestamp(t))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectSplitAtKey(t *testing.T) {
	r := Rect{LowKey: Key("a"), HighKey: KeyBound(Key("z")), Start: 1, End: TimeInfinity}
	left, right := r.SplitAtKey(Key("m"))
	if !left.ContainsKey(Key("a")) || left.ContainsKey(Key("m")) {
		t.Error("left half wrong")
	}
	if !right.ContainsKey(Key("m")) || right.ContainsKey(Key("lzz")) {
		t.Error("right half wrong")
	}
	// Every key in r is in exactly one half.
	for _, k := range []Key{Key("a"), Key("l"), Key("m"), Key("y")} {
		inLeft, inRight := left.ContainsKey(k), right.ContainsKey(k)
		if inLeft == inRight {
			t.Errorf("key %s: inLeft=%v inRight=%v, want exactly one", k, inLeft, inRight)
		}
	}
}

func TestRectSplitAtKeyPanicsOutside(t *testing.T) {
	r := Rect{LowKey: Key("a"), HighKey: KeyBound(Key("c")), Start: 1, End: 2}
	for _, bad := range []Key{Key("a"), Key("c"), Key("zz")} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitAtKey(%s) should panic", bad)
				}
			}()
			r.SplitAtKey(bad)
		}()
	}
}

func TestRectSplitAtTime(t *testing.T) {
	r := Rect{LowKey: nil, HighKey: InfiniteBound(), Start: 10, End: TimeInfinity}
	older, newer := r.SplitAtTime(15)
	if older.End != 15 || newer.Start != 15 {
		t.Fatalf("split halves wrong: %s / %s", older, newer)
	}
	if older.IsCurrent() {
		t.Error("older half must be closed")
	}
	if !newer.IsCurrent() {
		t.Error("newer half must stay current")
	}
	for _, ts := range []Timestamp{10, 14, 15, 100} {
		inOld, inNew := older.ContainsTime(ts), newer.ContainsTime(ts)
		if inOld == inNew {
			t.Errorf("time %v: inOld=%v inNew=%v, want exactly one", ts, inOld, inNew)
		}
	}
}

func TestRectOverlapsKeyRange(t *testing.T) {
	r := Rect{LowKey: Key("d"), HighKey: KeyBound(Key("m")), Start: 0, End: 1}
	cases := []struct {
		low  Key
		high Bound
		want bool
	}{
		{Key("a"), KeyBound(Key("d")), false}, // ends exactly at LowKey
		{Key("a"), KeyBound(Key("e")), true},
		{Key("m"), InfiniteBound(), false}, // begins exactly at HighKey
		{Key("l"), InfiniteBound(), true},
		{nil, InfiniteBound(), true},
		{Key("e"), KeyBound(Key("f")), true}, // fully inside
	}
	for _, c := range cases {
		if got := r.OverlapsKeyRange(c.low, c.high); got != c.want {
			t.Errorf("OverlapsKeyRange(%s,%s) = %v, want %v", c.low, c.high, got, c.want)
		}
	}
}

func TestVersionOrderingAndClone(t *testing.T) {
	a := Version{Key: Key("a"), Time: 5, Value: []byte("x")}
	b := Version{Key: Key("a"), Time: 9, Value: []byte("y")}
	c := Version{Key: Key("b"), Time: 1, Value: []byte("z")}
	p := Version{Key: Key("a"), Time: TimePending, Value: []byte("w")}
	if !a.Before(b) || b.Before(a) {
		t.Error("time ordering within key wrong")
	}
	if !b.Before(c) {
		t.Error("key ordering wrong")
	}
	if !b.Before(p) {
		t.Error("pending must sort after committed versions of same key")
	}
	cl := a.Clone()
	cl.Value[0] = 'Q'
	cl.Key[0] = 'Q'
	if a.Value[0] != 'x' || a.Key[0] != 'a' {
		t.Error("Clone aliases original")
	}
	if !p.IsPending() || a.IsPending() {
		t.Error("IsPending wrong")
	}
}

func TestVersionString(t *testing.T) {
	v := Version{Key: Key("60"), Time: 4, Value: []byte("Mary")}
	if got := v.String(); got != "60 Mary T=4" {
		t.Errorf("String() = %q", got)
	}
	d := Version{Key: Key("60"), Time: 9, Tombstone: true}
	if got := d.String(); got != "60 <deleted> T=9" {
		t.Errorf("tombstone String() = %q", got)
	}
}

func randKey(rng *rand.Rand) Key {
	n := rng.Intn(12)
	if n == 0 {
		return nil
	}
	k := make(Key, n)
	rng.Read(k)
	return k
}

func TestCodecRoundTripVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		in := Version{
			Key:       randKey(rng),
			Time:      Timestamp(rng.Uint64() >> 1),
			TxnID:     rng.Uint64() >> 3,
			Tombstone: rng.Intn(2) == 0,
		}
		if rng.Intn(4) > 0 {
			in.Value = make([]byte, rng.Intn(64))
			rng.Read(in.Value)
		}
		e := NewEncoder(nil)
		e.Version(in)
		d := NewDecoder(e.Bytes())
		out := d.Version()
		if d.Err() != nil {
			t.Fatalf("decode error: %v", d.Err())
		}
		if !out.Key.Equal(in.Key) || out.Time != in.Time || out.TxnID != in.TxnID ||
			out.Tombstone != in.Tombstone || string(out.Value) != string(in.Value) {
			t.Fatalf("round trip mismatch: in=%+v out=%+v", in, out)
		}
		if d.Remaining() != 0 {
			t.Fatalf("trailing bytes after decode: %d", d.Remaining())
		}
	}
}

func TestCodecRoundTripVersionSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		in := make([]Version, rng.Intn(8))
		for j := range in {
			in[j] = Version{
				Key:       randKey(rng),
				Time:      Timestamp(rng.Uint64() >> 1),
				TxnID:     rng.Uint64() >> 3,
				Tombstone: rng.Intn(2) == 0,
			}
			if rng.Intn(4) > 0 {
				in[j].Value = make([]byte, rng.Intn(64))
				rng.Read(in[j].Value)
			}
		}
		e := NewEncoder(nil)
		e.Versions(in)
		d := NewDecoder(e.Bytes())
		out := d.Versions()
		if d.Err() != nil {
			t.Fatalf("decode error: %v", d.Err())
		}
		if len(out) != len(in) {
			t.Fatalf("round trip length %d, want %d", len(out), len(in))
		}
		for j := range in {
			if !out[j].Key.Equal(in[j].Key) || out[j].Time != in[j].Time ||
				out[j].TxnID != in[j].TxnID || out[j].Tombstone != in[j].Tombstone ||
				string(out[j].Value) != string(in[j].Value) {
				t.Fatalf("version %d mismatch: in=%+v out=%+v", j, in[j], out[j])
			}
		}
		if d.Remaining() != 0 {
			t.Fatalf("trailing bytes after decode: %d", d.Remaining())
		}
	}
	// An absurd count prefix must fail cleanly instead of allocating.
	e := NewEncoder(nil)
	e.Uvarint(1 << 40)
	d := NewDecoder(e.Bytes())
	if d.Versions() != nil || d.Err() == nil {
		t.Fatal("oversized count should fail decoding")
	}
}

func TestCodecRoundTripRects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		in := Rect{
			LowKey: randKey(rng),
			Start:  Timestamp(rng.Uint64() >> 1),
			End:    Timestamp(rng.Uint64() >> 1),
		}
		if rng.Intn(3) == 0 {
			in.HighKey = InfiniteBound()
		} else {
			in.HighKey = KeyBound(randKey(rng))
		}
		e := NewEncoder(nil)
		e.Rect(in)
		d := NewDecoder(e.Bytes())
		out := d.Rect()
		if d.Err() != nil {
			t.Fatalf("decode error: %v", d.Err())
		}
		if !out.Equal(in) {
			t.Fatalf("round trip mismatch: in=%s out=%s", in, out)
		}
	}
}

func TestCodecPrimitives(t *testing.T) {
	e := NewEncoder(nil)
	e.Uvarint(300)
	e.Byte(7)
	e.Bool(true)
	e.Bool(false)
	e.Blob([]byte("abc"))
	e.Blob(nil)
	e.Time(99)
	d := NewDecoder(e.Bytes())
	if d.Uvarint() != 300 || d.Byte() != 7 || !d.Bool() || d.Bool() {
		t.Fatal("primitive round trip wrong")
	}
	if string(d.Blob()) != "abc" || len(d.Blob()) != 0 || d.Time() != 99 {
		t.Fatal("blob/time round trip wrong")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestCodecCorruptInputs(t *testing.T) {
	// Truncated varint.
	d := NewDecoder([]byte{0x80})
	d.Uvarint()
	if d.Err() == nil {
		t.Error("truncated varint should fail")
	}
	// Blob longer than buffer.
	e := NewEncoder(nil)
	e.Uvarint(100)
	d = NewDecoder(e.Bytes())
	d.Blob()
	if d.Err() == nil {
		t.Error("oversize blob should fail")
	}
	// Sticky error: further reads return zero values without panicking.
	if d.Byte() != 0 || d.Uvarint() != 0 || d.Blob() != nil {
		t.Error("sticky error should zero subsequent reads")
	}
	// Empty buffer byte read.
	d = NewDecoder(nil)
	d.Byte()
	if d.Err() == nil {
		t.Error("empty buffer byte read should fail")
	}
	// Version from garbage must not panic.
	d = NewDecoder([]byte{1, 0xff, 0xff})
	d.Version()
	if d.Err() == nil {
		t.Error("garbage version should fail")
	}
}

func TestEncoderReuseBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	e := NewEncoder(buf)
	e.Uvarint(1)
	if e.Len() == 0 {
		t.Error("Len should reflect appended data")
	}
	if len(e.Bytes()) != e.Len() {
		t.Error("Bytes/Len mismatch")
	}
}
