package record

import (
	"testing"
)

// FuzzDecodeVersion feeds arbitrary bytes to the version decoder: it must
// either fail cleanly or round-trip what it decoded, and never panic.
// (Run with `go test -fuzz=FuzzDecodeVersion ./internal/record` to explore;
// the seed corpus runs as a normal test.)
func FuzzDecodeVersion(f *testing.F) {
	// Seed with valid encodings and near-misses.
	e := NewEncoder(nil)
	e.Version(Version{Key: Key("key"), Time: 7, TxnID: 3, Value: []byte("value")})
	f.Add(e.Bytes())
	e = NewEncoder(nil)
	e.Version(Version{Key: Key("k"), Time: TimePending, TxnID: 1, Tombstone: true})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{1, 3, 'a', 'b', 'c'})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		v := d.Version()
		if d.Err() != nil {
			return // clean failure
		}
		// Whatever decoded must re-encode and decode to the same value.
		e := NewEncoder(nil)
		e.Version(v)
		d2 := NewDecoder(e.Bytes())
		v2 := d2.Version()
		if d2.Err() != nil {
			t.Fatalf("re-decode failed: %v", d2.Err())
		}
		if !v2.Key.Equal(v.Key) || v2.Time != v.Time || v2.TxnID != v.TxnID ||
			v2.Tombstone != v.Tombstone || string(v2.Value) != string(v.Value) {
			t.Fatalf("round trip mismatch: %+v vs %+v", v, v2)
		}
	})
}

// FuzzShardRouting drives the shard-boundary key codec with arbitrary keys
// and shard counts: routing must land every key inside its shard's
// half-open range, boundary keys must route to the shard they begin, and
// boundary keys must survive the page codec byte-identically (they are
// persisted as rectangle bounds in sharded metadata).
func FuzzShardRouting(f *testing.F) {
	f.Add([]byte("key0000"), uint16(8))
	f.Add([]byte{}, uint16(1))
	f.Add([]byte{0x61, 0x00}, uint16(256))
	f.Add([]byte{0xff, 0xff, 0x01}, uint16(65535))
	f.Add([]byte{0x00}, uint16(3))

	f.Fuzz(func(t *testing.T, key []byte, nRaw uint16) {
		n := int(nRaw)
		if n == 0 {
			n = 1
		}
		k := Key(key)
		i := ShardOfKey(k, n)
		if i < 0 || i >= n {
			t.Fatalf("shard %d of %d out of range", i, n)
		}
		low, high := ShardRange(i, n)
		if k.Less(low) || high.CompareKey(k) <= 0 {
			t.Fatalf("key %x routed to shard %d/%d but outside [%s,%s)", key, i, n, low, high)
		}
		// The boundary key itself belongs to the shard it opens.
		if got := ShardOfKey(low, n); got != i && len(low) > 0 {
			t.Fatalf("boundary %x of shard %d/%d routes to %d", low, i, n, got)
		}
		// Codec round trip of the boundary.
		e := NewEncoder(nil)
		e.Key(low)
		d := NewDecoder(e.Bytes())
		got := d.Key()
		if d.Err() != nil || !got.Equal(low) {
			t.Fatalf("boundary codec round trip %x -> %x (%v)", low, got, d.Err())
		}
	})
}

// FuzzDecodeRect is the rectangle decoder analogue.
func FuzzDecodeRect(f *testing.F) {
	e := NewEncoder(nil)
	e.Rect(Rect{LowKey: Key("a"), HighKey: KeyBound(Key("m")), Start: 3, End: 9})
	f.Add(e.Bytes())
	e = NewEncoder(nil)
	e.Rect(WholeSpace())
	f.Add(e.Bytes())
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		r := d.Rect()
		if d.Err() != nil {
			return
		}
		e := NewEncoder(nil)
		e.Rect(r)
		d2 := NewDecoder(e.Bytes())
		r2 := d2.Rect()
		if d2.Err() != nil || !r2.Equal(r) {
			t.Fatalf("round trip mismatch: %s vs %s (%v)", r, r2, d2.Err())
		}
	})
}
