package record

import (
	"testing"
)

// FuzzDecodeVersion feeds arbitrary bytes to the version decoder: it must
// either fail cleanly or round-trip what it decoded, and never panic.
// (Run with `go test -fuzz=FuzzDecodeVersion ./internal/record` to explore;
// the seed corpus runs as a normal test.)
func FuzzDecodeVersion(f *testing.F) {
	// Seed with valid encodings and near-misses.
	e := NewEncoder(nil)
	e.Version(Version{Key: Key("key"), Time: 7, TxnID: 3, Value: []byte("value")})
	f.Add(e.Bytes())
	e = NewEncoder(nil)
	e.Version(Version{Key: Key("k"), Time: TimePending, TxnID: 1, Tombstone: true})
	f.Add(e.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte{1, 3, 'a', 'b', 'c'})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		v := d.Version()
		if d.Err() != nil {
			return // clean failure
		}
		// Whatever decoded must re-encode and decode to the same value.
		e := NewEncoder(nil)
		e.Version(v)
		d2 := NewDecoder(e.Bytes())
		v2 := d2.Version()
		if d2.Err() != nil {
			t.Fatalf("re-decode failed: %v", d2.Err())
		}
		if !v2.Key.Equal(v.Key) || v2.Time != v.Time || v2.TxnID != v.TxnID ||
			v2.Tombstone != v.Tombstone || string(v2.Value) != string(v.Value) {
			t.Fatalf("round trip mismatch: %+v vs %+v", v, v2)
		}
	})
}

// FuzzDecodeRect is the rectangle decoder analogue.
func FuzzDecodeRect(f *testing.F) {
	e := NewEncoder(nil)
	e.Rect(Rect{LowKey: Key("a"), HighKey: KeyBound(Key("m")), Start: 3, End: 9})
	f.Add(e.Bytes())
	e = NewEncoder(nil)
	e.Rect(WholeSpace())
	f.Add(e.Bytes())
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		r := d.Rect()
		if d.Err() != nil {
			return
		}
		e := NewEncoder(nil)
		e.Rect(r)
		d2 := NewDecoder(e.Bytes())
		r2 := d2.Rect()
		if d2.Err() != nil || !r2.Equal(r) {
			t.Fatalf("round trip mismatch: %s vs %s (%v)", r, r2, d2.Err())
		}
	})
}
