package record

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The codec is a small, allocation-conscious binary encoder/decoder used by
// every node format in the repository (TSB-tree nodes, WOBT sectors, B+-tree
// pages). Integers are unsigned varints, byte strings are length-prefixed.
// Decoders carry a sticky error so call sites can decode a whole structure
// and check once, in the style of bufio.Scanner.

// ErrCorrupt is returned when a page or sector does not decode cleanly.
var ErrCorrupt = errors.New("record: corrupt encoding")

// Encoder appends binary fields to a byte slice.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder that appends to buf (which may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Byte appends a single byte.
func (e *Encoder) Byte(b byte) { e.buf = append(e.buf, b) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Blob appends a length-prefixed byte string.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Time appends a timestamp.
func (e *Encoder) Time(t Timestamp) { e.Uvarint(uint64(t)) }

// Key appends a length-prefixed key.
func (e *Encoder) Key(k Key) { e.Blob(k) }

// Bound appends a key bound.
func (e *Encoder) Bound(b Bound) {
	e.Bool(b.inf)
	if !b.inf {
		e.Blob(b.key)
	}
}

// Rect appends a rectangle.
func (e *Encoder) Rect(r Rect) {
	e.Key(r.LowKey)
	e.Bound(r.HighKey)
	e.Time(r.Start)
	e.Time(r.End)
}

// Version appends a version record.
func (e *Encoder) Version(v Version) {
	var flags byte
	if v.Tombstone {
		flags |= 1
	}
	e.Byte(flags)
	e.Key(v.Key)
	e.Time(v.Time)
	e.Uvarint(v.TxnID)
	e.Blob(v.Value)
}

// Versions appends a count-prefixed run of version records: the wire
// encoding of a commit's write set, shared by the write-ahead log's
// frames and the logical checkpoint chunks.
func (e *Encoder) Versions(vs []Version) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Version(v)
	}
}

// Decoder reads binary fields from a byte slice with a sticky error.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: at offset %d of %d", ErrCorrupt, d.off, len(d.buf))
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Byte reads a single byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Blob reads a length-prefixed byte string. The returned slice is a copy,
// safe to retain after the page buffer is recycled.
func (d *Decoder) Blob() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(d.Remaining()) < n {
		d.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+int(n)])
	d.off += int(n)
	return out
}

// Time reads a timestamp.
func (d *Decoder) Time() Timestamp { return Timestamp(d.Uvarint()) }

// Key reads a key.
func (d *Decoder) Key() Key {
	b := d.Blob()
	if len(b) == 0 {
		return nil
	}
	return Key(b)
}

// Bound reads a key bound.
func (d *Decoder) Bound() Bound {
	if d.Bool() {
		return InfiniteBound()
	}
	b := d.Blob()
	if len(b) == 0 {
		return KeyBound(nil)
	}
	return KeyBound(Key(b))
}

// Rect reads a rectangle.
func (d *Decoder) Rect() Rect {
	var r Rect
	r.LowKey = d.Key()
	r.HighKey = d.Bound()
	r.Start = d.Time()
	r.End = d.Time()
	return r
}

// Version reads a version record.
func (d *Decoder) Version() Version {
	var v Version
	flags := d.Byte()
	v.Tombstone = flags&1 != 0
	v.Key = d.Key()
	v.Time = d.Time()
	v.TxnID = d.Uvarint()
	v.Value = d.Blob()
	return v
}

// Versions reads a count-prefixed run of version records written by
// Encoder.Versions.
func (d *Decoder) Versions() []Version {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	// The smallest version (flags, empty key, time, txn id, empty
	// value) occupies 5 bytes, so a count exceeding Remaining/5 is
	// corrupt, not merely big — and the pre-allocation below is further
	// capped so a crafted count can never balloon memory ahead of the
	// decode failing.
	if n > uint64(d.Remaining())/5 {
		d.fail()
		return nil
	}
	out := make([]Version, 0, min(n, 1024))
	for i := uint64(0); i < n; i++ {
		v := d.Version()
		if d.err != nil {
			return nil
		}
		out = append(out, v)
	}
	return out
}
