package record

// Wire framing shared by the WAL segments and the service layer's
// network protocol: a frame is
//
//	| payload length (uint32 LE) | CRC32-C of payload (uint32 LE) | payload |
//
// The same shape guards both durability (internal/wal segments) and the
// tsbserve wire protocol (internal/server/wire), so torn-tail detection
// and corruption handling are one code path with one fuzz target. The
// three failure modes are typed: a frame whose header claims more than
// the caller's limit is ErrFrameTooLarge (corruption or abuse — the
// decoder refuses before allocating or reading the claimed length), a
// frame that ends early is ErrFrameTruncated, and a payload whose
// checksum disagrees with the header is ErrFrameCRC.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameHeaderSize is the fixed byte cost of one frame: length + CRC.
const FrameHeaderSize = 8

// MaxFramePayload is the absolute payload bound: a length header above
// it is corruption, not data, whatever limit the caller passes.
const MaxFramePayload = 1 << 30

var frameCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Typed frame decoding failures. ErrFrameTruncated means "the buffer or
// stream ended inside a frame": more bytes may simply not have arrived
// yet, so stream readers treat it as retryable-after-more-input, while
// WAL replay treats it as the torn tail.
var (
	ErrFrameTooLarge  = errors.New("record: frame payload exceeds limit")
	ErrFrameTruncated = errors.New("record: truncated frame")
	ErrFrameCRC       = errors.New("record: frame CRC mismatch")
)

// AppendFrame appends one frame carrying payload to dst and returns the
// extended buffer.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, frameCRCTable))
	return append(append(dst, hdr[:]...), payload...)
}

// frameLimit resolves a caller limit: 0 means the absolute bound.
func frameLimit(maxPayload int) uint32 {
	if maxPayload <= 0 || maxPayload > MaxFramePayload {
		return MaxFramePayload
	}
	return uint32(maxPayload)
}

// DecodeFrame decodes the first frame in buf, returning its payload and
// the remainder of buf after the frame. The payload aliases buf; clone
// it to retain it past the buffer's reuse. maxPayload bounds the
// payload length this decoder will accept (0 = MaxFramePayload); a
// header claiming more fails with ErrFrameTooLarge before anything past
// the header is touched, a buffer ending inside the frame fails with
// ErrFrameTruncated, and a checksum mismatch fails with ErrFrameCRC.
func DecodeFrame(buf []byte, maxPayload int) (payload, rest []byte, err error) {
	if len(buf) < FrameHeaderSize {
		return nil, buf, ErrFrameTruncated
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if n > frameLimit(maxPayload) {
		return nil, buf, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	if uint32(len(buf)-FrameHeaderSize) < n {
		return nil, buf, ErrFrameTruncated
	}
	payload = buf[FrameHeaderSize : FrameHeaderSize+int(n)]
	if crc32.Checksum(payload, frameCRCTable) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, buf, ErrFrameCRC
	}
	return payload, buf[FrameHeaderSize+int(n):], nil
}

// ReadFrame reads exactly one frame from r and returns its payload. It
// never reads past the frame, and never reads the payload of a frame
// whose header exceeds maxPayload (0 = MaxFramePayload) — the over-read
// and over-allocation guard for network peers. io.EOF is returned only
// at a clean frame boundary; an EOF inside a frame is ErrFrameTruncated.
func ReadFrame(r io.Reader, maxPayload int) ([]byte, error) {
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > frameLimit(maxPayload) {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFrameTruncated, err)
	}
	if crc32.Checksum(payload, frameCRCTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, ErrFrameCRC
	}
	return payload, nil
}
