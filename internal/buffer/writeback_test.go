package buffer

import (
	"fmt"
	"testing"
)

// TestWritebackBuffersWrites: in writeback mode the device sees nothing
// until a capture is flushed back.
func TestWritebackBuffersWrites(t *testing.T) {
	dev := newDev()
	pool := NewWritebackPool(dev, 4)
	p, _ := pool.Alloc()
	if err := pool.Write(p, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if dev.Stats().Writes != 0 {
		t.Fatal("writeback write reached the device")
	}
	if got, err := pool.Read(p); err != nil || string(got) != "dirty" {
		t.Fatalf("read through dirty frame: %q, %v", got, err)
	}
	if n := pool.DirtyCount(); n != 1 {
		t.Fatalf("DirtyCount = %d", n)
	}
	copies := pool.CaptureDirty(NoTag)
	if len(copies) != 1 || string(copies[0].Data) != "dirty" {
		t.Fatalf("capture: %+v", copies)
	}
	if err := dev.Write(copies[0].Page, copies[0].Data); err != nil {
		t.Fatal(err)
	}
	pool.MarkClean(copies)
	if n := pool.DirtyCount(); n != 0 {
		t.Fatalf("DirtyCount after MarkClean = %d", n)
	}
	if st := pool.Stats(); st.FlushedPages != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestWritebackNoSteal: dirty pages are never evicted; the pool grows
// past capacity instead and trims after the flush.
func TestWritebackNoSteal(t *testing.T) {
	dev := newDev()
	pool := NewWritebackPool(dev, 2)
	var pages []uint64
	for i := 0; i < 6; i++ {
		p, _ := pool.Alloc()
		pages = append(pages, p)
		if err := pool.Write(p, []byte(fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// All six dirty frames must still be readable from memory — the
	// device has nothing.
	for i, p := range pages {
		got, err := pool.Read(p)
		if err != nil || string(got) != fmt.Sprintf("d%d", i) {
			t.Fatalf("dirty page %d lost: %q, %v", p, got, err)
		}
	}
	st := pool.Stats()
	if st.DirtyPages != 6 || st.Overflows == 0 {
		t.Fatalf("stats: %+v", st)
	}
	copies := pool.CaptureDirty(NoTag)
	for _, cp := range copies {
		if err := dev.Write(cp.Page, cp.Data); err != nil {
			t.Fatal(err)
		}
	}
	pool.MarkClean(copies)
	if st := pool.Stats(); st.DirtyPages != 0 {
		t.Fatalf("dirty after flush: %+v", st)
	}
	// Trimmed back to capacity; evicted pages reload from the device.
	for i, p := range pages {
		got, err := pool.Read(p)
		if err != nil || string(got) != fmt.Sprintf("d%d", i) {
			t.Fatalf("page %d after trim: %q, %v", p, got, err)
		}
	}
}

// TestWritebackEpochDetectsRewrite: a page re-dirtied after its capture
// stays dirty through MarkClean.
func TestWritebackEpochDetectsRewrite(t *testing.T) {
	dev := newDev()
	pool := NewWritebackPool(dev, 4)
	p, _ := pool.Alloc()
	if err := pool.Write(p, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	copies := pool.CaptureDirty(NoTag)
	if err := pool.Write(p, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	pool.MarkClean(copies)
	if n := pool.DirtyCount(); n != 1 {
		t.Fatalf("re-dirtied page marked clean (dirty = %d)", n)
	}
	again := pool.CaptureDirty(NoTag)
	if len(again) != 1 || string(again[0].Data) != "v2" {
		t.Fatalf("recapture: %+v", again)
	}
}

// TestWritebackTags: tagged views partition the dirty table into flush
// groups.
func TestWritebackTags(t *testing.T) {
	dev := newDev()
	pool := NewWritebackPool(dev, 8)
	s0 := pool.Tagged(0)
	s1 := pool.Tagged(1)
	p0, _ := s0.Alloc()
	p1, _ := s1.Alloc()
	if err := s0.Write(p0, []byte("shard0")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Write(p1, []byte("shard1")); err != nil {
		t.Fatal(err)
	}
	c0 := pool.CaptureDirty(0)
	if len(c0) != 1 || c0[0].Page != p0 {
		t.Fatalf("tag 0 capture: %+v", c0)
	}
	c1 := pool.CaptureDirty(1)
	if len(c1) != 1 || c1[0].Page != p1 {
		t.Fatalf("tag 1 capture: %+v", c1)
	}
	if all := pool.CaptureDirty(NoTag); len(all) != 2 {
		t.Fatalf("all-tags capture: %+v", all)
	}
}

// TestPinBlocksEviction: a pinned clean page survives capacity
// pressure; unpinning releases it.
func TestPinBlocksEviction(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 2)
	p, _ := pool.Alloc()
	if err := pool.Write(p, []byte("pinned")); err != nil {
		t.Fatal(err)
	}
	if err := pool.Pin(p); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		q, _ := pool.Alloc()
		if err := pool.Write(q, []byte("filler")); err != nil {
			t.Fatal(err)
		}
	}
	devReads := dev.Stats().Reads
	if got, err := pool.Read(p); err != nil || string(got) != "pinned" {
		t.Fatalf("pinned read: %q, %v", got, err)
	}
	if dev.Stats().Reads != devReads {
		t.Fatal("pinned page was evicted (device read needed)")
	}
	pool.Unpin(p)
}

// TestCaptureDirtyGroups: one walk buckets every flush group.
func TestCaptureDirtyGroups(t *testing.T) {
	dev := newDev()
	pool := NewWritebackPool(dev, 8)
	if pool.CaptureDirtyGroups() != nil {
		t.Fatal("groups of a clean pool should be nil")
	}
	for tag := 0; tag < 3; tag++ {
		view := pool.Tagged(tag)
		for i := 0; i <= tag; i++ {
			p, _ := view.Alloc()
			if err := view.Write(p, []byte{byte(tag)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	groups := pool.CaptureDirtyGroups()
	for tag := 0; tag < 3; tag++ {
		if len(groups[tag]) != tag+1 {
			t.Fatalf("group %d has %d pages, want %d", tag, len(groups[tag]), tag+1)
		}
		for _, cp := range groups[tag] {
			if cp.Data[0] != byte(tag) {
				t.Fatalf("group %d captured foreign page %d", tag, cp.Page)
			}
		}
	}
}
