// Package buffer provides an LRU page cache layered over a
// storage.PageStore. The trees in this repository perform page-granular
// reads and writes; placing a Pool between a tree and its MagneticDisk
// turns repeated traversals of hot index pages into memory hits, exactly
// the role a database buffer manager plays over a real drive.
//
// The pool is a write-through cache: Write updates both the cache and the
// underlying device, so the device always holds the durable image and the
// device-level space accounting stays exact. Read hits avoid device I/O
// (and therefore simulated seek latency), which is what experiment E5
// measures.
package buffer

import (
	"container/list"
	"sync"

	"repro/internal/storage"
)

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no reads occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	page uint64
	data []byte
}

// Pool is an LRU write-through page cache. It implements
// storage.PageStore and is safe for concurrent use.
type Pool struct {
	mu    sync.Mutex
	dev   storage.PageStore
	cap   int
	lru   *list.List // front = most recently used
	byPg  map[uint64]*list.Element
	stats Stats
}

// NewPool returns a pool caching up to capacity pages of dev.
func NewPool(dev storage.PageStore, capacity int) *Pool {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	return &Pool{
		dev:  dev,
		cap:  capacity,
		lru:  list.New(),
		byPg: make(map[uint64]*list.Element),
	}
}

// PageSize returns the underlying device's page size.
func (p *Pool) PageSize() int { return p.dev.PageSize() }

// Alloc allocates a page on the underlying device.
func (p *Pool) Alloc() (uint64, error) { return p.dev.Alloc() }

func (p *Pool) insert(page uint64, data []byte) {
	if el, ok := p.byPg[page]; ok {
		el.Value.(*frame).data = data
		p.lru.MoveToFront(el)
		return
	}
	if p.lru.Len() >= p.cap {
		back := p.lru.Back()
		p.lru.Remove(back)
		delete(p.byPg, back.Value.(*frame).page)
		p.stats.Evictions++
	}
	p.byPg[page] = p.lru.PushFront(&frame{page: page, data: data})
}

// Read returns the page contents, from cache when possible.
func (p *Pool) Read(page uint64) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byPg[page]; ok {
		p.lru.MoveToFront(el)
		p.stats.Hits++
		cached := el.Value.(*frame).data
		out := make([]byte, len(cached))
		copy(out, cached)
		return out, nil
	}
	p.stats.Misses++
	data, err := p.dev.Read(page)
	if err != nil {
		return nil, err
	}
	cached := make([]byte, len(data))
	copy(cached, data)
	p.insert(page, cached)
	return data, nil
}

// Write stores the page contents through to the device and refreshes the
// cached copy.
func (p *Pool) Write(page uint64, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.dev.Write(page, data); err != nil {
		return err
	}
	cached := make([]byte, len(data))
	copy(cached, data)
	p.insert(page, cached)
	return nil
}

// Free drops any cached copy and releases the page on the device.
func (p *Pool) Free(page uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byPg[page]; ok {
		p.lru.Remove(el)
		delete(p.byPg, page)
	}
	return p.dev.Free(page)
}

// Stats returns a snapshot of the cache counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

var _ storage.PageStore = (*Pool)(nil)
