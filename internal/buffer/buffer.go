// Package buffer provides the page cache layered over a
// storage.PageStore. The trees in this repository perform page-granular
// reads and writes; placing a Pool between a tree and its magnetic
// device turns repeated traversals of hot index pages into memory hits,
// exactly the role a database buffer manager plays over a real drive.
//
// The pool runs in one of two modes:
//
//   - Write-through (NewPool): Write updates both the cache and the
//     underlying device, so the device always holds the durable image
//     and the device-level space accounting stays exact. This is the
//     mode of the simulated devices (experiment E5 measures its hit
//     economics).
//
//   - Writeback (NewWritebackPool): Write updates only the cache and
//     marks the page dirty in the dirty-page table; the device is
//     written only when a checkpoint flushes. The pool is strictly
//     no-steal — a dirty page is never evicted and never reaches the
//     device outside a flush — which is what lets the paged durable
//     mode keep its on-disk page file reconstructible to the last
//     checkpoint boundary (internal/pagestore). When every frame over
//     capacity is dirty or pinned, the pool grows past capacity rather
//     than violate no-steal (Stats.Overflows counts this; the
//     checkpoint cadence bounds it).
//
// Writes can be tagged with a flush group (Tagged) — the paged engine
// tags each shard's tree and the secondary indexes — so a checkpoint
// can pre-flush shard by shard (CaptureDirty with a tag) before its
// final boundary capture. Pin/Unpin protect hot pages from eviction.
package buffer

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/storage"
)

// NoTag is the flush group of untagged writes.
const NoTag = -1

// Stats is a snapshot of cache effectiveness and dirty-table counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// DirtyPages is the current size of the dirty-page table
	// (writeback mode only).
	DirtyPages int
	// FlushedPages counts dirty pages written back to the device by
	// flush captures.
	FlushedPages uint64
	// Overflows counts frames the pool kept past capacity because
	// every eviction candidate was dirty or pinned.
	Overflows uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 when no reads occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type frame struct {
	page  uint64
	data  []byte
	dirty bool
	epoch uint64 // bumped on every write; lets a flush detect re-dirtying
	tag   int
	pins  int
}

// Pool is an LRU page cache implementing storage.PageStore. It is safe
// for concurrent use.
type Pool struct {
	mu        sync.Mutex //tsb:latch level=7 name=buffer-pool
	dev       storage.PageStore
	cap       int
	writeback bool
	lru       *list.List // front = most recently used
	byPg      map[uint64]*list.Element
	epoch     uint64
	nDirty    int

	// Cache-effectiveness counters are obs instruments — the one source
	// of truth; Stats() derives from them and RegisterMetrics names
	// them. They are mutated under mu but read lock-free at scrape time.
	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
	flushed   obs.Counter
	overflows obs.Counter
}

// NewPool returns a write-through pool caching up to capacity pages of
// dev.
func NewPool(dev storage.PageStore, capacity int) *Pool {
	return newPool(dev, capacity, false)
}

// NewWritebackPool returns a writeback (no-steal) pool over dev: writes
// buffer in the dirty-page table until a flush capture writes them
// back. See the package documentation.
func NewWritebackPool(dev storage.PageStore, capacity int) *Pool {
	return newPool(dev, capacity, true)
}

func newPool(dev storage.PageStore, capacity int, writeback bool) *Pool {
	if capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	return &Pool{
		dev:       dev,
		cap:       capacity,
		writeback: writeback,
		lru:       list.New(),
		byPg:      make(map[uint64]*list.Element),
	}
}

// PageSize returns the underlying device's page size.
func (p *Pool) PageSize() int { return p.dev.PageSize() }

// Alloc allocates a page on the underlying device.
func (p *Pool) Alloc() (uint64, error) { return p.dev.Alloc() }

// insert upserts a frame and evicts if over capacity. Called under mu.
func (p *Pool) insert(page uint64, data []byte, dirty bool, tag int) *frame {
	if el, ok := p.byPg[page]; ok {
		fr := el.Value.(*frame)
		fr.data = data
		if dirty && !fr.dirty {
			p.nDirty++
		}
		if dirty {
			fr.dirty = true
			fr.tag = tag
			p.epoch++
			fr.epoch = p.epoch
		}
		p.lru.MoveToFront(el)
		return fr
	}
	p.evictSome(p.cap - 1)
	fr := &frame{page: page, data: data, dirty: dirty, tag: tag}
	if dirty {
		p.nDirty++
		p.epoch++
		fr.epoch = p.epoch
	}
	p.byPg[page] = p.lru.PushFront(fr)
	return fr
}

// evictSome drops least-recently-used clean, unpinned frames until at
// most n remain, examining a bounded number of candidates so a mostly-
// dirty pool costs O(1) per insert, not a full LRU walk: if the
// candidates are all dirty or pinned, the pool grows past capacity
// (no-steal) and Stats.Overflows records it. MarkClean trims back.
func (p *Pool) evictSome(n int) {
	const scanLimit = 8
	el := p.lru.Back()
	for scanned := 0; p.lru.Len() > n && el != nil && scanned < scanLimit; scanned++ {
		prev := el.Prev()
		fr := el.Value.(*frame)
		if !fr.dirty && fr.pins == 0 {
			p.lru.Remove(el)
			delete(p.byPg, fr.page)
			p.evictions.Inc()
		}
		el = prev
	}
	if p.lru.Len() > n {
		p.overflows.Inc()
	}
}

// Read returns the page contents, from cache when possible.
func (p *Pool) Read(page uint64) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byPg[page]; ok {
		p.lru.MoveToFront(el)
		p.hits.Inc()
		cached := el.Value.(*frame).data
		out := make([]byte, len(cached))
		copy(out, cached)
		return out, nil
	}
	p.misses.Inc()
	data, err := p.dev.Read(page)
	if err != nil {
		return nil, err
	}
	cached := make([]byte, len(data))
	copy(cached, data)
	p.insert(page, cached, false, NoTag)
	return data, nil
}

// Write stores the page contents: through to the device in
// write-through mode, into the dirty-page table in writeback mode.
func (p *Pool) Write(page uint64, data []byte) error { return p.write(page, data, NoTag) }

func (p *Pool) write(page uint64, data []byte, tag int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.writeback {
		if err := p.dev.Write(page, data); err != nil {
			return err
		}
	} else if len(data) > p.dev.PageSize() {
		return fmt.Errorf("%w: %d > page size %d", storage.ErrTooLarge, len(data), p.dev.PageSize())
	}
	cached := make([]byte, len(data))
	copy(cached, data)
	p.insert(page, cached, p.writeback, tag)
	return nil
}

// Free drops any cached copy (even a dirty one: a freed page's contents
// are dead) and releases the page on the device.
func (p *Pool) Free(page uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byPg[page]; ok {
		if el.Value.(*frame).dirty {
			p.nDirty--
		}
		p.lru.Remove(el)
		delete(p.byPg, page)
	}
	return p.dev.Free(page)
}

// Pin loads page into the cache (if absent) and protects it from
// eviction until a matching Unpin.
func (p *Pool) Pin(page uint64) error {
	p.mu.Lock()
	if el, ok := p.byPg[page]; ok {
		el.Value.(*frame).pins++
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	if _, err := p.Read(page); err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.byPg[page]
	if !ok {
		// The read's insert was immediately evicted: capacity 1 corner.
		data, err := p.dev.Read(page)
		if err != nil {
			return err
		}
		fr := p.insert(page, data, false, NoTag)
		fr.pins++
		return nil
	}
	el.Value.(*frame).pins++
	return nil
}

// Unpin releases one pin on page.
func (p *Pool) Unpin(page uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byPg[page]; ok {
		if fr := el.Value.(*frame); fr.pins > 0 {
			fr.pins--
		}
	}
}

// Tagged returns a view of the pool whose writes carry the given flush
// group — the handle each shard's tree (and the secondary indexes) gets
// in the paged durable mode, so a checkpoint can pre-flush shard by
// shard. Reads, allocation, and freeing are the shared pool's.
func (p *Pool) Tagged(tag int) storage.PageStore { return &taggedView{p: p, tag: tag} }

type taggedView struct {
	p   *Pool
	tag int
}

func (v *taggedView) PageSize() int                     { return v.p.PageSize() }
func (v *taggedView) Alloc() (uint64, error)            { return v.p.Alloc() }
func (v *taggedView) Read(page uint64) ([]byte, error)  { return v.p.Read(page) }
func (v *taggedView) Free(page uint64) error            { return v.p.Free(page) }
func (v *taggedView) Write(page uint64, b []byte) error { return v.p.write(page, b, v.tag) }

// DirtyPage is one captured entry of the dirty-page table: the page,
// a copy of its contents, and the write epoch the copy was taken at.
type DirtyPage struct {
	Page  uint64
	Data  []byte
	Epoch uint64
}

// CaptureDirty copies the dirty pages of one flush group (NoTag < 0 or
// any negative tag captures every group) out of the table: a
// memory-only snapshot the caller then writes to the device. It holds
// the pool latch only for the copy, never for I/O.
func (p *Pool) CaptureDirty(tag int) []DirtyPage {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nDirty == 0 {
		return nil
	}
	var out []DirtyPage
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if !fr.dirty || (tag >= 0 && fr.tag != tag) {
			continue
		}
		out = append(out, captureFrame(fr))
	}
	return out
}

// CaptureDirtyExact copies the dirty pages whose tag equals tag
// exactly — unlike CaptureDirty, a negative tag selects only the
// untagged group instead of acting as a catch-all. The fuzzy checkpoint
// needs this: after a shard's group was captured at its own boundary
// LSN, re-dirtied pages of that shard must NOT ride along with a later
// group's capture, or the installed image would hold commits the
// boundary says are replay's to re-apply.
func (p *Pool) CaptureDirtyExact(tag int) []DirtyPage {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nDirty == 0 {
		return nil
	}
	var out []DirtyPage
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if !fr.dirty || fr.tag != tag {
			continue
		}
		out = append(out, captureFrame(fr))
	}
	return out
}

// CaptureDirtyGroups captures every flush group's dirty pages in a
// single walk of the pool, keyed by tag — what a checkpoint's
// group-by-group pre-flush uses, so the scan cost is one O(pool) pass
// regardless of the group count, not one pass per group.
func (p *Pool) CaptureDirtyGroups() map[int][]DirtyPage {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.nDirty == 0 {
		return nil
	}
	out := make(map[int][]DirtyPage)
	for el := p.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if !fr.dirty {
			continue
		}
		out[fr.tag] = append(out[fr.tag], captureFrame(fr))
	}
	return out
}

func captureFrame(fr *frame) DirtyPage {
	data := make([]byte, len(fr.data))
	copy(data, fr.data)
	return DirtyPage{Page: fr.page, Data: data, Epoch: fr.epoch}
}

// MarkClean retires captured pages from the dirty-page table once their
// contents are on the device — unless a write landed after the capture
// (the epoch moved), in which case the page stays dirty for the next
// flush.
func (p *Pool) MarkClean(pages []DirtyPage) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cp := range pages {
		el, ok := p.byPg[cp.Page]
		if !ok {
			continue
		}
		fr := el.Value.(*frame)
		if fr.dirty && fr.epoch == cp.Epoch {
			fr.dirty = false
			p.nDirty--
			p.flushed.Inc()
		}
	}
	// Cleaning may have created eviction candidates for an over-full
	// pool; trim back to capacity (a full walk, but once per flush).
	el := p.lru.Back()
	for p.lru.Len() > p.cap && el != nil {
		prev := el.Prev()
		fr := el.Value.(*frame)
		if !fr.dirty && fr.pins == 0 {
			p.lru.Remove(el)
			delete(p.byPg, fr.page)
			p.evictions.Inc()
		}
		el = prev
	}
}

// DirtyCount returns the current size of the dirty-page table.
func (p *Pool) DirtyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nDirty
}

// Stats returns a snapshot of the cache counters, derived from the
// pool's registered instruments.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Hits:         p.hits.Load(),
		Misses:       p.misses.Load(),
		Evictions:    p.evictions.Load(),
		DirtyPages:   p.nDirty,
		FlushedPages: p.flushed.Load(),
		Overflows:    p.overflows.Load(),
	}
}

// RegisterMetrics names the pool's instruments in r; the engine facade
// calls it once at open. The derived gauges take the pool mutex at
// scrape time only.
func (p *Pool) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("tsb_buffer_hits_total", "page reads served from the pool", &p.hits)
	r.RegisterCounter("tsb_buffer_misses_total", "page reads that went to the device", &p.misses)
	r.RegisterCounter("tsb_buffer_evictions_total", "clean frames evicted", &p.evictions)
	r.RegisterCounter("tsb_buffer_flushed_pages_total", "dirty pages written back by flush captures", &p.flushed)
	r.RegisterCounter("tsb_buffer_overflows_total", "frames kept past capacity (all candidates dirty or pinned)", &p.overflows)
	r.GaugeFunc("tsb_buffer_dirty_pages", "current dirty-page table size", func() float64 {
		return float64(p.DirtyCount())
	})
	r.GaugeFunc("tsb_buffer_hit_ratio", "hits / (hits + misses)", func() float64 {
		return Stats{Hits: p.hits.Load(), Misses: p.misses.Load()}.HitRate()
	})
}

var _ storage.PageStore = (*Pool)(nil)
