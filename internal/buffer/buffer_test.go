package buffer

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

func newDev() *storage.MagneticDisk {
	return storage.NewMagneticDisk(64, storage.CostModel{})
}

func TestPoolHitAvoidsDeviceRead(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 4)
	p, _ := pool.Alloc()
	if err := pool.Write(p, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	devReadsBefore := dev.Stats().Reads
	for i := 0; i < 5; i++ {
		got, err := pool.Read(p)
		if err != nil || string(got) != "hello" {
			t.Fatalf("read %q, %v", got, err)
		}
	}
	if dev.Stats().Reads != devReadsBefore {
		t.Errorf("cache hits should not touch the device (reads %d -> %d)",
			devReadsBefore, dev.Stats().Reads)
	}
	st := pool.Stats()
	if st.Hits != 5 || st.Misses != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.HitRate() != 1.0 {
		t.Errorf("HitRate = %v", st.HitRate())
	}
}

func TestPoolMissFillsFromDevice(t *testing.T) {
	dev := newDev()
	p, _ := dev.Alloc()
	dev.Write(p, []byte("cold"))
	pool := NewPool(dev, 4)
	got, err := pool.Read(p)
	if err != nil || string(got) != "cold" {
		t.Fatalf("read %q, %v", got, err)
	}
	st := pool.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Errorf("stats: %+v", st)
	}
	// Second read is a hit.
	pool.Read(p)
	if pool.Stats().Hits != 1 {
		t.Errorf("second read should hit: %+v", pool.Stats())
	}
}

func TestPoolEvictsLRU(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 2)
	pages := make([]uint64, 3)
	for i := range pages {
		p, _ := pool.Alloc()
		pages[i] = p
		pool.Write(p, []byte{byte(i)})
	}
	// Capacity 2: writing page 2 evicted page 0.
	if pool.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", pool.Stats().Evictions)
	}
	// Reading page 0 must miss; reading pages 1-2... page 1 was evicted? No:
	// order after writes: [2,1] (0 evicted). Read 0 -> miss, evicts 1.
	pool.Read(pages[0])
	st := pool.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
	pool.Read(pages[2]) // still cached -> hit
	if pool.Stats().Hits != 1 {
		t.Fatalf("hits = %d, want 1", pool.Stats().Hits)
	}
}

func TestPoolWriteThrough(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 2)
	p, _ := pool.Alloc()
	pool.Write(p, []byte("durable"))
	// Bypass the pool: the device must already hold the data.
	got, err := dev.Read(p)
	if err != nil || string(got) != "durable" {
		t.Fatalf("device read %q, %v", got, err)
	}
}

func TestPoolFreeDropsCache(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 2)
	p, _ := pool.Alloc()
	pool.Write(p, []byte("x"))
	if err := pool.Free(p); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Read(p); err == nil {
		t.Error("read of freed page must fail, not serve stale cache")
	}
}

func TestPoolReadReturnsCopy(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 2)
	p, _ := pool.Alloc()
	pool.Write(p, []byte("abc"))
	got, _ := pool.Read(p)
	got[0] = 'Z'
	again, _ := pool.Read(p)
	if string(again) != "abc" {
		t.Error("cached data was aliased by a reader")
	}
}

func TestPoolWriteErrorNotCached(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 2)
	// Page 99 was never allocated: write must fail and not poison the cache.
	if err := pool.Write(99, []byte("x")); err == nil {
		t.Fatal("write to unallocated page should fail")
	}
	if _, err := pool.Read(99); err == nil {
		t.Fatal("read of unallocated page should fail")
	}
}

func TestPoolConcurrent(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 8)
	pages := make([]uint64, 16)
	for i := range pages {
		p, _ := pool.Alloc()
		pages[i] = p
		pool.Write(p, []byte(fmt.Sprintf("v%d", i)))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				idx := (g + i) % len(pages)
				got, err := pool.Read(pages[idx])
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if want := fmt.Sprintf("v%d", idx); string(got) != want {
					t.Errorf("page %d: got %q want %q", idx, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPoolConcurrentMixed hammers the pool with concurrent writers,
// readers, allocators, and stats snapshots — the access pattern the
// sharded engine produces, where every shard tree shares one pool. Each
// goroutine owns a disjoint set of pages so content checks are exact;
// what is shared (and verified race-clean) is the pool's LRU, map, and
// counters.
func TestPoolConcurrentMixed(t *testing.T) {
	dev := newDev()
	pool := NewPool(dev, 16) // smaller than the working set: forces evictions
	const goroutines = 8
	const pagesPer = 6
	var wg sync.WaitGroup
	// Each goroutine publishes its final page -> contents view here, so
	// the main goroutine can audit cache-vs-device agreement afterwards.
	finals := make([]map[uint64]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pages := make([]uint64, pagesPer)
			vals := make([]string, pagesPer)
			defer func() {
				final := make(map[uint64]string, pagesPer)
				for i, p := range pages {
					final[p] = vals[i]
				}
				finals[g] = final
			}()
			for i := range pages {
				p, err := pool.Alloc()
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				pages[i] = p
				vals[i] = fmt.Sprintf("g%d-p%d-v0", g, i)
				if err := pool.Write(p, []byte(vals[i])); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
			for i := 0; i < 300; i++ {
				idx := i % pagesPer
				switch i % 5 {
				case 0: // rewrite
					vals[idx] = fmt.Sprintf("g%d-p%d-v%d", g, idx, i)
					if err := pool.Write(pages[idx], []byte(vals[idx])); err != nil {
						t.Errorf("rewrite: %v", err)
						return
					}
				case 3: // free and reallocate
					if err := pool.Free(pages[idx]); err != nil {
						t.Errorf("free: %v", err)
						return
					}
					p, err := pool.Alloc()
					if err != nil {
						t.Errorf("realloc: %v", err)
						return
					}
					pages[idx] = p
					vals[idx] = fmt.Sprintf("g%d-p%d-v%d", g, idx, i)
					if err := pool.Write(p, []byte(vals[idx])); err != nil {
						t.Errorf("write after realloc: %v", err)
						return
					}
				case 4:
					pool.Stats()
				default: // read back own page
					got, err := pool.Read(pages[idx])
					if err != nil {
						t.Errorf("read: %v", err)
						return
					}
					if string(got) != vals[idx] {
						t.Errorf("page %d: got %q want %q", pages[idx], got, vals[idx])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// The cache must still agree with the device for every live page.
	for g, final := range finals {
		for p, want := range final {
			fromPool, err := pool.Read(p)
			if err != nil {
				t.Fatalf("g%d page %d: pool read: %v", g, p, err)
			}
			fromDev, err := dev.Read(p)
			if err != nil {
				t.Fatalf("g%d page %d: device read: %v", g, p, err)
			}
			if string(fromPool) != want || string(fromDev) != want {
				t.Fatalf("g%d page %d: pool=%q device=%q want %q", g, p, fromPool, fromDev, want)
			}
		}
	}
	if st := pool.Stats(); st.Hits+st.Misses == 0 {
		t.Error("no reads recorded")
	}
}

func TestPoolPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPool(newDev(), 0)
}

func TestHitRateZeroWhenUnused(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Error("empty stats HitRate should be 0")
	}
}
