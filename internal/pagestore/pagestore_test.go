package pagestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/storage"
)

func pageCfg(t *testing.T) Config {
	t.Helper()
	return Config{Path: filepath.Join(t.TempDir(), "pages.dev"), PageSize: 128}
}

func TestPageFileRoundTrip(t *testing.T) {
	cfg := pageCfg(t)
	pf, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pages []uint64
	for i := 0; i < 10; i++ {
		p, err := pf.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		pages = append(pages, p)
		if err := pf.Write(p, []byte(fmt.Sprintf("payload-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pages {
		got, err := pf.Read(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("payload-%02d", i); string(got) != want {
			t.Fatalf("page %d = %q, want %q", p, got, want)
		}
	}
	if _, err := pf.Read(99); !errors.Is(err, storage.ErrBadPage) {
		t.Fatalf("read of unallocated page: %v", err)
	}
	st := pf.Stats()
	if st.PagesInUse != 10 || st.Writes != 10 {
		t.Fatalf("stats: %+v", st)
	}
	pf.Close()
}

func TestPageFileCRC(t *testing.T) {
	cfg := pageCfg(t)
	pf, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := pf.Alloc()
	if err := pf.Write(p, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	if err := pf.CompleteFlush(1, pf.Pages()); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	// Flip one payload byte on disk: the read must fail, loudly.
	raw, err := os.ReadFile(cfg.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[fileHeaderSize+pageFrameHeader+2] ^= 0xFF
	if err := os.WriteFile(cfg.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(cfg, AllocState{Pages: 1}, storage.MagneticStats{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Read(p); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read of corrupted page: %v", err)
	}
}

// TestPageFileJournalRestore is the torn-flush property at device
// level: overwrite pages through the journal protocol, "crash" before
// CompleteFlush, reopen with the old epoch — every page must read its
// OLD content and pages beyond the old boundary must be gone.
func TestPageFileJournalRestore(t *testing.T) {
	cfg := pageCfg(t)
	pf, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p, _ := pf.Alloc()
		if err := pf.Write(p, []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	// Checkpoint 1 installed: boundary = 4 pages, epoch 1.
	if err := pf.CompleteFlush(1, 4); err != nil {
		t.Fatal(err)
	}

	// A new flush overwrites two pages and adds a fifth — then crashes
	// (no CompleteFlush).
	p4, _ := pf.Alloc()
	if err := pf.WriteBatch([]uint64{1, 3, p4}, [][]byte{[]byte("new-1"), []byte("new-3"), []byte("new-4")}); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	re, err := Open(cfg, AllocState{Pages: 4}, storage.MagneticStats{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 4; i++ {
		got, err := re.Read(uint64(i))
		if err != nil {
			t.Fatalf("page %d after restore: %v", i, err)
		}
		if want := fmt.Sprintf("old-%d", i); string(got) != want {
			t.Fatalf("page %d = %q after restore, want %q", i, got, want)
		}
	}
	if _, err := re.Read(4); !errors.Is(err, storage.ErrBadPage) {
		t.Fatalf("page past the boundary survived: %v", err)
	}
	if _, err := os.Stat(cfg.Path + ".journal"); !os.IsNotExist(err) {
		t.Fatal("journal survived recovery")
	}
}

// TestPageFileJournalStale: after CompleteFlush the journal is gone; a
// reopen at the NEW epoch must see the new content.
func TestPageFileJournalStale(t *testing.T) {
	cfg := pageCfg(t)
	pf, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := pf.Alloc()
	if err := pf.Write(p, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := pf.CompleteFlush(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := pf.Write(p, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pf.CompleteFlush(2, 1); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	re, err := Open(cfg, AllocState{Pages: 1}, storage.MagneticStats{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Read(p)
	if err != nil || string(got) != "v2" {
		t.Fatalf("page = %q, %v; want v2", got, err)
	}
}

// TestPageFileTornJournalHeader: a journal whose header never made it
// to disk means no page was touched; recovery ignores it.
func TestPageFileTornJournalHeader(t *testing.T) {
	cfg := pageCfg(t)
	pf, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := pf.Alloc()
	if err := pf.Write(p, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := pf.CompleteFlush(1, 1); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	if err := os.WriteFile(cfg.Path+".journal", []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(cfg, AllocState{Pages: 1}, storage.MagneticStats{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, err := re.Read(p); err != nil || string(got) != "v1" {
		t.Fatalf("page = %q, %v; want v1", got, err)
	}
}

func burnCfg(t *testing.T) BurnConfig {
	t.Helper()
	return BurnConfig{Path: filepath.Join(t.TempDir(), "worm.dev"), SectorSize: 64}
}

func TestBurnFileRoundTrip(t *testing.T) {
	cfg := burnCfg(t)
	bf, err := CreateBurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	small := []byte("tiny")
	big := bytes.Repeat([]byte("0123456789abcdef"), 11) // 176 bytes: 3 sectors
	a1, err := bf.Append(small)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := bf.Append(big)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		addr storage.Addr
		want []byte
	}{{a1, small}, {a2, big}} {
		got, err := bf.ReadAt(tc.addr)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, tc.want) {
			t.Fatalf("ReadAt(%v) = %d bytes, want %d", tc.addr, len(got), len(tc.want))
		}
	}
	st := bf.Stats()
	if st.SectorsBurned != 4 || st.PayloadBytes != uint64(len(small)+len(big)) {
		t.Fatalf("stats: %+v", st)
	}
	if st.WastedBytes != 4*64-st.PayloadBytes {
		t.Fatalf("waste accounting: %+v", st)
	}
	bf.Close()
}

// TestBurnFileTornTail: sectors past the durable boundary are verified
// on reopen; the torn one and everything after it are clipped, intact
// orphans are kept as burned waste.
func TestBurnFileTornTail(t *testing.T) {
	cfg := burnCfg(t)
	bf, err := CreateBurn(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bf.Append(bytes.Repeat([]byte("d"), 150)); err != nil { // 3 sectors, durable
		t.Fatal(err)
	}
	if err := bf.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := bf.Burned()
	statsAt := bf.Stats()
	if _, err := bf.Append([]byte("orphan-intact")); err != nil { // sector 3
		t.Fatal(err)
	}
	if _, err := bf.Append([]byte("will-be-torn")); err != nil { // sector 4
		t.Fatal(err)
	}
	bf.Close()

	// Corrupt sector 4's payload: simulated torn write.
	raw, err := os.ReadFile(cfg.Path)
	if err != nil {
		t.Fatal(err)
	}
	off := fileHeaderSize + 4*(burnFrameHeader+64) + burnFrameHeader
	raw[off] ^= 0xFF
	if err := os.WriteFile(cfg.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, rep, err := OpenBurn(cfg, durable, statsAt, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !rep.Clipped || rep.ClippedAt != 4 {
		t.Fatalf("reopen report: %+v, want clip at sector 4", rep)
	}
	if rep.OrphanSectors != 1 {
		t.Fatalf("reopen report: %+v, want 1 orphan", rep)
	}
	if re.Burned() != 4 {
		t.Fatalf("burned = %d, want 4", re.Burned())
	}
	// New appends land after the orphan, never overlapping it.
	a, err := re.Append([]byte("after-crash"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Off != 4 {
		t.Fatalf("post-crash append at sector %d, want 4", a.Off)
	}
	if got, err := re.ReadAt(a); err != nil || string(got) != "after-crash" {
		t.Fatalf("ReadAt after clip: %q, %v", got, err)
	}
	// The orphan stays burned: waste accounting includes it.
	if st := re.Stats(); st.SectorsBurned != 5 {
		t.Fatalf("sectors burned = %d, want 5 (3 durable + 1 orphan + 1 new)", st.SectorsBurned)
	}
}

func TestInspectors(t *testing.T) {
	dir := t.TempDir()
	pagePath, burnPath := Paths(dir)
	pf, err := Create(Config{Path: pagePath, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, _ := pf.Alloc()
		if err := pf.Write(p, []byte(fmt.Sprintf("page-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pf.Close()
	bf, err := CreateBurn(BurnConfig{Path: burnPath, SectorSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bf.Append(bytes.Repeat([]byte("s"), 100)); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	var pagesSeen, pagesOK int
	size, n, err := InspectPages(pagePath, func(info PageInfo) error {
		pagesSeen++
		if info.Written && info.CRCOK {
			pagesOK++
		}
		return nil
	})
	if err != nil || size != 128 || n != 3 || pagesSeen != 3 || pagesOK != 3 {
		t.Fatalf("InspectPages: size=%d n=%d seen=%d ok=%d err=%v", size, n, pagesSeen, pagesOK, err)
	}
	var payload int
	ssize, sn, err := InspectSectors(burnPath, func(info SectorInfo) error {
		if !info.CRCOK {
			t.Fatalf("sector %d bad CRC", info.Sector)
		}
		payload += info.Len
		return nil
	})
	if err != nil || ssize != 64 || sn != 2 || payload != 100 {
		t.Fatalf("InspectSectors: size=%d n=%d payload=%d err=%v", ssize, sn, payload, err)
	}
}

// flakyFile fails the Nth Sync call (1-based), then recovers: the
// transient-error model the journal protocol must survive.
type flakyFile struct {
	storage.BlockFile
	syncs     int
	failSyncN int
}

func (f *flakyFile) Sync() error {
	f.syncs++
	if f.syncs == f.failSyncN {
		return fmt.Errorf("flaky: injected sync failure %d", f.syncs)
	}
	return f.BlockFile.Sync()
}

// TestPageFileRetryAfterJournalSyncFailure: a WriteBatch whose journal
// sync fails must leave every page of the batch eligible for
// re-journaling — a retried flush followed by a crash must still
// restore the boundary image.
func TestPageFileRetryAfterJournalSyncFailure(t *testing.T) {
	cfg := pageCfg(t)
	var flaky *flakyFile
	cfg.Wrap = func(f storage.BlockFile) storage.BlockFile {
		// Only the journal gets wrapped flakily: it is the SECOND file
		// opened (the page file is first).
		if flaky == nil {
			return f
		}
		flaky.BlockFile = f
		return flaky
	}
	pf, err := Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := pf.Alloc()
	if err := pf.Write(p, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := pf.CompleteFlush(1, 1); err != nil {
		t.Fatal(err)
	}

	// Next flush: the journal's entry-batch sync (sync #2: header is
	// #1) fails, so WriteBatch must fail WITHOUT touching the slot.
	flaky = &flakyFile{failSyncN: 2}
	if err := pf.WriteBatch([]uint64{p}, [][]byte{[]byte("new1")}); err == nil {
		t.Fatal("WriteBatch survived a journal sync failure")
	}
	// Retry succeeds — and must journal the old bytes NOW.
	if err := pf.WriteBatch([]uint64{p}, [][]byte{[]byte("new2")}); err != nil {
		t.Fatal(err)
	}
	if err := pf.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash before CompleteFlush: reopen at the old epoch must restore
	// the OLD content (possible only if the retry journaled it).
	pf.Close()
	cfg.Wrap = nil
	re, err := Open(cfg, AllocState{Pages: 1}, storage.MagneticStats{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Read(p)
	if err != nil || string(got) != "old" {
		t.Fatalf("page = %q, %v after torn retried flush; want old", got, err)
	}
}
