// Package pagestore implements the file-backed storage devices of the
// paged durable mode: the two-tier hierarchy the paper designs for
// (§1) held in real disk files instead of in-memory simulations.
//
//   - PageFile is the magnetic disk: a mutable array of fixed-size
//     pages, each stored as a CRC-guarded frame, read and written at
//     page offsets. Between checkpoints the file is never touched (the
//     buffer pool above it runs a no-steal policy); a checkpoint
//     flushes the dirty pages through a rollback journal so the on-disk
//     image always reconstructs to a page-consistent boundary, even if
//     the flush itself is torn by a crash.
//
//   - BurnFile is the WORM disk: an append-only run of CRC-guarded
//     sector frames, each written exactly once. Reopening verifies the
//     unsynced tail sector by sector and clips it at the first torn
//     frame; intact sectors past the checkpoint boundary are kept as
//     burned waste, exactly as unacknowledged burns on write-once media
//     would be.
//
// Both devices keep the paper's accounting (SpaceM via
// storage.MagneticStats, SpaceO and burned-vs-payload via
// storage.WORMStats) and satisfy the storage.PageDevice and
// storage.WORMDevice contracts, so the TSB-trees run on them unchanged.
// The wal checkpoint format v4 records the metadata that reattaches a
// database to these files (allocator state, tree roots, the burned
// boundary); see internal/db for the checkpoint and recovery protocol.
package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/storage"
)

// ErrCorrupt is returned when a frame's CRC does not match its payload:
// the page or sector was torn by a crash or damaged at rest.
var ErrCorrupt = errors.New("pagestore: CRC mismatch")

// fileHeaderSize is the fixed preamble of both device files: an 8-byte
// magic plus the block size, zero-padded for future format needs.
const fileHeaderSize = 64

var (
	pageMagic = [8]byte{'T', 'S', 'B', 'P', 'A', 'G', 'E', 1}
	burnMagic = [8]byte{'T', 'S', 'B', 'W', 'O', 'R', 'M', 1}
	jrnlMagic = [8]byte{'T', 'S', 'B', 'J', 'R', 'N', 'L', 1}
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wrapFn is the fault-injection seam: every file a device opens for
// writing is passed through it (storage.TornBlockFile in crash tests).
type wrapFn func(storage.BlockFile) storage.BlockFile

func wrap(w wrapFn, f storage.BlockFile) storage.BlockFile {
	if w == nil {
		return f
	}
	return w(f)
}

// writeFileHeader writes the 64-byte preamble: magic + block size.
func writeFileHeader(f storage.BlockFile, magic [8]byte, blockSize int) error {
	var hdr [fileHeaderSize]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(blockSize))
	_, err := f.WriteAt(hdr[:], 0)
	return err
}

// readFileHeader verifies the preamble and returns the block size.
func readFileHeader(f storage.BlockFile, magic [8]byte, path string) (int, error) {
	var hdr [fileHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, fmt.Errorf("pagestore: %s: read header: %w", path, err)
	}
	for i := range magic {
		if hdr[i] != magic[i] {
			return 0, fmt.Errorf("pagestore: %s: bad magic (not a device file, or wrong kind)", path)
		}
	}
	size := int(binary.LittleEndian.Uint32(hdr[8:12]))
	if size <= 0 {
		return 0, fmt.Errorf("pagestore: %s: block size %d in header", path, size)
	}
	return size, nil
}

// openBlock opens (or creates) path as a BlockFile through the wrap
// seam.
func openBlock(path string, create bool, w wrapFn) (storage.BlockFile, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE | os.O_TRUNC
	}
	raw, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return wrap(w, raw), nil
}

// crcFrame appends an 8-byte (length, CRC32-C) header plus payload to
// buf — the same framing the WAL uses, reused for journal entries.
func crcFrame(buf, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// parseCRCFrames walks a buffer of crcFrame-encoded frames, calling fn
// for each intact payload, and reports whether the walk consumed the
// whole buffer without hitting a torn or corrupt frame.
func parseCRCFrames(buf []byte, fn func(payload []byte) error) (clean bool, err error) {
	off := 0
	for off+8 <= len(buf) {
		n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
		crc := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if n < 0 || off+8+n > len(buf) {
			return false, nil
		}
		payload := buf[off+8 : off+8+n]
		if crc32.Checksum(payload, castagnoli) != crc {
			return false, nil
		}
		if err := fn(payload); err != nil {
			return false, err
		}
		off += 8 + n
	}
	return off == len(buf), nil
}
