package pagestore

import (
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
)

// PageInfo describes one page slot of a page file, as InspectPages saw
// it on disk — no locking, safe on a live or crashed directory.
type PageInfo struct {
	Page    uint64
	Written bool // a frame is present (the slot is not a hole)
	Len     int  // payload bytes (0 for holes)
	CRCOK   bool // frame validates (magic, length, stamp, CRC)
}

// InspectPages walks every page slot of the page file at path.
func InspectPages(path string, fn func(PageInfo) error) (pageSize int, pages uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	pageSize, err = readFileHeader(f, pageMagic, path)
	if err != nil {
		return 0, 0, err
	}
	frame := int64(pageFrameHeader + pageSize)
	buf := make([]byte, frame)
	for p := uint64(0); ; p++ {
		n, rerr := f.ReadAt(buf, fileHeaderSize+int64(p)*frame)
		if rerr != nil && rerr != io.EOF {
			return 0, 0, rerr
		}
		if n == 0 {
			return pageSize, p, nil
		}
		info := PageInfo{Page: p}
		if n >= pageFrameHeader && binary.LittleEndian.Uint32(buf[0:4]) != 0 {
			info.Written = true
			info.Len = int(binary.LittleEndian.Uint32(buf[4:8]))
			_, derr := decodePageFrame(buf[:n], p, pageSize)
			info.CRCOK = derr == nil
		}
		if err := fn(info); err != nil {
			return 0, 0, err
		}
	}
}

// SectorInfo describes one sector slot of a burn file.
type SectorInfo struct {
	Sector uint64
	Len    int // payload bytes claimed by the frame header
	CRCOK  bool
}

// InspectSectors walks every sector slot of the burn file at path.
func InspectSectors(path string, fn func(SectorInfo) error) (sectorSize int, sectors uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sectorSize, err = readFileHeader(f, burnMagic, path)
	if err != nil {
		return 0, 0, err
	}
	frame := int64(burnFrameHeader + sectorSize)
	buf := make([]byte, frame)
	for s := uint64(0); ; s++ {
		n, rerr := f.ReadAt(buf, fileHeaderSize+int64(s)*frame)
		if rerr != nil && rerr != io.EOF {
			return 0, 0, rerr
		}
		if n == 0 {
			return sectorSize, s, nil
		}
		info := SectorInfo{Sector: s}
		if n >= burnFrameHeader {
			info.Len = int(binary.LittleEndian.Uint32(buf[0:4]))
			_, info.CRCOK = decodeBurnFrame(buf[:n], sectorSize)
			if !info.CRCOK && info.Len > sectorSize {
				info.Len = 0
			}
		}
		if err := fn(info); err != nil {
			return 0, 0, err
		}
	}
}

// Paths derives the standard device file names inside a durable
// directory: pages.dev, worm.dev (and pages.dev.journal while a
// checkpoint flush is in progress).
func Paths(dir string) (pagePath, burnPath string) {
	return filepath.Join(dir, "pages.dev"), filepath.Join(dir, "worm.dev")
}
