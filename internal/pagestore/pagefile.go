package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Page frames: each page occupies a fixed slot of pageFrameHeader +
// PageSize bytes. The header carries a magic (so a never-written slot —
// a file hole — is distinguishable from data), the payload length, its
// CRC32-C, and the page number (detecting misdirected writes).
const pageFrameHeader = 16

const pageFrameMagic = 0x50414745 // "PAGE"

// AllocState is the page allocator's persistent state: the checkpoint
// metadata carries it so reopening resumes allocation exactly where the
// boundary left it.
type AllocState struct {
	// Pages is the next never-allocated page number (equivalently, the
	// logical length of the page file in pages).
	Pages uint64
	// Free lists allocated-then-freed pages available for reuse.
	Free []uint64
}

// Config configures a PageFile.
type Config struct {
	// Path is the page file; Path+".journal" holds the rollback journal
	// while a checkpoint flush is in progress.
	Path string
	// PageSize is the fixed page size in bytes.
	PageSize int
	// Wrap, if set, wraps every file opened for writing — the
	// fault-injection seam (storage.TornBlockFile) for crash tests.
	Wrap func(storage.BlockFile) storage.BlockFile
}

func (c Config) journalPath() string { return c.Path + ".journal" }

// PageFile is the file-backed magnetic disk: a mutable array of
// fixed-size CRC-guarded pages implementing storage.PageDevice.
//
// The write protocol assumes the no-steal discipline of the paged
// durable mode: between checkpoints nothing writes the file, so its
// contents always reconstruct to the last installed checkpoint
// boundary. A checkpoint flush calls WriteBatch one or more times and
// then Sync; before any slot is overwritten, its previous contents are
// appended to the rollback journal and the journal is fsynced, so a
// crash mid-flush restores the old image (Open replays the journal) and
// the WAL tail from the old boundary still applies exactly once. After
// the new checkpoint metadata is durably installed, CompleteFlush
// retires the journal and advances the restore point.
// It is safe for concurrent use.
type PageFile struct {
	mu       sync.Mutex //tsb:latch level=7 name=page-file
	cfg      Config
	f        storage.BlockFile
	pageSize int

	next  uint64   // next never-allocated page
	free  []uint64 // recycled pages
	inUse int

	diskEpoch uint64 // checkpoint epoch the file reconstructs to
	diskPages uint64 // allocator Pages at that epoch (truncation point)

	jf        storage.BlockFile // open rollback journal, nil between flushes
	jOff      int64
	journaled map[uint64]bool

	stats storage.MagneticStats

	// Device latency instruments; recorded under the page-file latch the
	// operations already hold, named by RegisterMetrics.
	readHist  obs.Histogram // one ReadAt per observation
	writeHist obs.Histogram // one WriteBatch slot loop per observation
	syncHist  obs.Histogram // one fsync per observation
}

// Create makes a fresh, empty page file at cfg.Path, removing any stale
// journal: the open path for a new (or pre-first-checkpoint) directory.
func Create(cfg Config) (*PageFile, error) {
	if cfg.PageSize <= 0 {
		return nil, fmt.Errorf("pagestore: page size %d", cfg.PageSize)
	}
	f, err := openBlock(cfg.Path, true, cfg.Wrap)
	if err != nil {
		return nil, fmt.Errorf("pagestore: create %s: %w", cfg.Path, err)
	}
	if err := writeFileHeader(f, pageMagic, cfg.PageSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s: write header: %w", cfg.Path, err)
	}
	if err := os.Remove(cfg.journalPath()); err != nil && !os.IsNotExist(err) {
		f.Close()
		return nil, err
	}
	return &PageFile{cfg: cfg, f: f, pageSize: cfg.PageSize}, nil
}

// Open reattaches to an existing page file whose installed checkpoint
// recorded allocator state `state`, stats `base`, and epoch `epoch`. If
// a rollback journal from a torn checkpoint flush is present and its
// epoch matches, the journal is replayed — every overwritten slot gets
// its old contents back and the file is truncated to the boundary page
// count — so the file is returned page-consistent at the boundary. A
// stale journal (its checkpoint completed) is discarded.
func Open(cfg Config, state AllocState, base storage.MagneticStats, epoch uint64) (*PageFile, error) {
	f, err := openBlock(cfg.Path, false, cfg.Wrap)
	if err != nil {
		return nil, fmt.Errorf("pagestore: open %s: %w", cfg.Path, err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()
	size, err := readFileHeader(f, pageMagic, cfg.Path)
	if err != nil {
		return nil, err
	}
	if cfg.PageSize != 0 && cfg.PageSize != size {
		return nil, fmt.Errorf("pagestore: %s has %d-byte pages, config asks for %d", cfg.Path, size, cfg.PageSize)
	}
	p := &PageFile{
		cfg:       cfg,
		f:         f,
		pageSize:  size,
		next:      state.Pages,
		free:      append([]uint64(nil), state.Free...),
		diskEpoch: epoch,
		diskPages: state.Pages,
		stats:     base,
	}
	p.inUse = int(state.Pages) - len(state.Free)
	p.stats.PagesInUse = p.inUse
	if p.stats.HighWater < p.inUse {
		p.stats.HighWater = p.inUse
	}
	if err := p.recoverJournal(epoch); err != nil {
		return nil, err
	}
	ok = true
	return p, nil
}

// frameOff returns the file offset of page p's slot.
func (p *PageFile) frameOff(page uint64) int64 {
	return fileHeaderSize + int64(page)*int64(pageFrameHeader+p.pageSize)
}

// PageSize returns the fixed page size in bytes.
func (p *PageFile) PageSize() int { return p.pageSize }

// Pages returns the next never-allocated page number.
func (p *PageFile) Pages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next
}

// AllocState snapshots the allocator for the checkpoint metadata.
func (p *PageFile) AllocState() AllocState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return AllocState{Pages: p.next, Free: append([]uint64(nil), p.free...)}
}

// Alloc reserves a fresh (or recycled) page. The file itself grows only
// when the page is first flushed.
func (p *PageFile) Alloc() (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var page uint64
	if n := len(p.free); n > 0 {
		page = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		page = p.next
		p.next++
	}
	p.inUse++
	p.stats.Allocs++
	p.stats.PagesInUse = p.inUse
	if p.inUse > p.stats.HighWater {
		p.stats.HighWater = p.inUse
	}
	return page, nil
}

// Free releases page p for reuse. The slot's bytes are left in place;
// validity is an allocator property, not a file one.
func (p *PageFile) Free(page uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if page >= p.next {
		return fmt.Errorf("%w: free of page %d", storage.ErrBadPage, page)
	}
	p.free = append(p.free, page)
	p.inUse--
	p.stats.Frees++
	p.stats.PagesInUse = p.inUse
	return nil
}

// Read returns the payload of page `page`, verifying its CRC.
func (p *PageFile) Read(page uint64) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if page >= p.next {
		return nil, fmt.Errorf("%w: read of page %d", storage.ErrBadPage, page)
	}
	start := time.Now()
	buf := make([]byte, pageFrameHeader+p.pageSize)
	n, err := p.f.ReadAt(buf, p.frameOff(page))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("pagestore: read page %d: %w", page, err)
	}
	p.stats.Reads++
	elapsed := time.Since(start)
	p.stats.SimTime += elapsed
	p.readHist.Observe(elapsed)
	payload, werr := decodePageFrame(buf[:n], page, p.pageSize)
	if werr != nil {
		return nil, werr
	}
	return payload, nil
}

// decodePageFrame validates one page slot's bytes and returns the
// payload. A short or zero-magic slot is ErrUnwritten; a bad CRC or
// mismatched page stamp is ErrCorrupt.
func decodePageFrame(buf []byte, page uint64, pageSize int) ([]byte, error) {
	if len(buf) < pageFrameHeader {
		return nil, fmt.Errorf("%w: page %d", storage.ErrUnwritten, page)
	}
	magic := binary.LittleEndian.Uint32(buf[0:4])
	if magic == 0 {
		return nil, fmt.Errorf("%w: page %d", storage.ErrUnwritten, page)
	}
	if magic != pageFrameMagic {
		return nil, fmt.Errorf("%w: page %d: bad frame magic %#x", ErrCorrupt, page, magic)
	}
	plen := int(binary.LittleEndian.Uint32(buf[4:8]))
	crc := binary.LittleEndian.Uint32(buf[8:12])
	stamp := binary.LittleEndian.Uint32(buf[12:16])
	if plen > pageSize || pageFrameHeader+plen > len(buf) {
		return nil, fmt.Errorf("%w: page %d: length %d", ErrCorrupt, page, plen)
	}
	if stamp != uint32(page) {
		return nil, fmt.Errorf("%w: page %d: frame stamped for page %d (misdirected write)", ErrCorrupt, page, stamp)
	}
	payload := buf[pageFrameHeader : pageFrameHeader+plen]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("%w: page %d", ErrCorrupt, page)
	}
	out := make([]byte, plen)
	copy(out, payload)
	return out, nil
}

// encodePageFrame builds the slot bytes for one page write.
func encodePageFrame(page uint64, data []byte) []byte {
	buf := make([]byte, pageFrameHeader+len(data))
	binary.LittleEndian.PutUint32(buf[0:4], pageFrameMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(data, castagnoli))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(page))
	copy(buf[pageFrameHeader:], data)
	return buf
}

// Write stores one page through the journal protocol: a WriteBatch of
// one. The paged engine's hot path never takes it (writes buffer in the
// pool and flush in batches); it exists to satisfy storage.PageStore.
func (p *PageFile) Write(page uint64, data []byte) error {
	return p.WriteBatch([]uint64{page}, [][]byte{data})
}

// WriteBatch overwrites a batch of page slots, journaling the previous
// contents first: the journal is appended and fsynced before any slot
// is touched, so a crash at any point reconstructs the last installed
// boundary. Callers flush dirty pages with one or more WriteBatch
// calls, then Sync, then durably install the new checkpoint metadata,
// then CompleteFlush.
func (p *PageFile) WriteBatch(pages []uint64, datas [][]byte) error {
	if len(pages) != len(datas) {
		return fmt.Errorf("pagestore: WriteBatch of %d pages, %d payloads", len(pages), len(datas))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, page := range pages {
		if page >= p.next {
			return fmt.Errorf("%w: write to page %d", storage.ErrBadPage, page)
		}
		if len(datas[i]) > p.pageSize {
			return fmt.Errorf("%w: %d > page size %d", storage.ErrTooLarge, len(datas[i]), p.pageSize)
		}
	}
	if err := p.journalBatch(pages); err != nil {
		return err
	}
	start := time.Now()
	for i, page := range pages {
		frame := encodePageFrame(page, datas[i])
		if _, err := p.f.WriteAt(frame, p.frameOff(page)); err != nil {
			return fmt.Errorf("pagestore: write page %d: %w", page, err)
		}
		p.stats.Writes++
	}
	elapsed := time.Since(start)
	p.stats.SimTime += elapsed
	p.writeHist.Observe(elapsed)
	return nil
}

// Sync makes every flushed page durable.
func (p *PageFile) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()
	err := p.f.Sync()
	p.syncHist.Observe(time.Since(start))
	return err
}

// Stats returns a snapshot of the accounting counters (cumulative
// across reopens: Open seeds them from the checkpoint metadata).
func (p *PageFile) Stats() storage.MagneticStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// RegisterMetrics names the file's device-latency histograms in r.
func (p *PageFile) RegisterMetrics(r *obs.Registry) {
	dev := obs.Label{Key: "device", Value: "page"}
	r.RegisterHistogram("tsb_device_read_seconds", "page-slot ReadAt latency", &p.readHist, dev)
	r.RegisterHistogram("tsb_device_write_seconds", "page-slot write-batch latency", &p.writeHist, dev)
	r.RegisterHistogram("tsb_device_sync_seconds", "page-file fsync latency", &p.syncHist, dev)
}

// Close closes the page file and any open journal.
func (p *PageFile) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.jf != nil {
		_ = p.jf.Close()
		p.jf = nil
	}
	return p.f.Close()
}

// --- rollback journal ---

// journalBatch records the pre-flush contents of every not-yet-journaled
// page in the batch and fsyncs the journal. Pages past the boundary
// count need no entry: restore truncates the file back to the boundary.
func (p *PageFile) journalBatch(pages []uint64) error {
	if p.jf == nil {
		jf, err := openBlock(p.cfg.journalPath(), true, p.cfg.Wrap)
		if err != nil {
			return fmt.Errorf("pagestore: create journal: %w", err)
		}
		hdr := make([]byte, 0, 24)
		hdr = append(hdr, jrnlMagic[:]...)
		hdr = binary.LittleEndian.AppendUint64(hdr, p.diskEpoch)
		hdr = binary.LittleEndian.AppendUint64(hdr, p.diskPages)
		framed := crcFrame(nil, hdr)
		if _, err := jf.WriteAt(framed, 0); err != nil {
			jf.Close()
			return fmt.Errorf("pagestore: journal header: %w", err)
		}
		if err := jf.Sync(); err != nil {
			jf.Close()
			return fmt.Errorf("pagestore: journal header sync: %w", err)
		}
		p.jf = jf
		p.jOff = int64(len(framed))
		p.journaled = make(map[uint64]bool)
	}
	// A page may be marked journaled ONLY once its entry (or its
	// covered-by-truncation status) is durable: a failed append or sync
	// must leave every page of this batch eligible for re-journaling,
	// or a retried checkpoint would overwrite slots with no durable
	// pre-image and a later crash could not restore the boundary.
	var batch []byte
	var fresh []uint64
	for _, page := range pages {
		if p.journaled[page] {
			continue
		}
		fresh = append(fresh, page)
		if page >= p.diskPages {
			continue // restore truncates past the boundary; no old bytes exist
		}
		old := make([]byte, pageFrameHeader+p.pageSize)
		n, err := p.f.ReadAt(old, p.frameOff(page))
		if err != nil && err != io.EOF {
			return fmt.Errorf("pagestore: journal read of page %d: %w", page, err)
		}
		entry := make([]byte, 0, 9+n)
		if n < pageFrameHeader || binary.LittleEndian.Uint32(old[0:4]) == 0 {
			entry = append(entry, 0) // hole: restore zeroes the header
			entry = binary.LittleEndian.AppendUint64(entry, page)
		} else {
			entry = append(entry, 1)
			entry = binary.LittleEndian.AppendUint64(entry, page)
			keep := pageFrameHeader + int(binary.LittleEndian.Uint32(old[4:8]))
			if keep > n {
				keep = n
			}
			entry = append(entry, old[:keep]...)
		}
		batch = crcFrame(batch, entry)
	}
	if len(batch) > 0 {
		if _, err := p.jf.WriteAt(batch, p.jOff); err != nil {
			return fmt.Errorf("pagestore: journal append: %w", err)
		}
		if err := p.jf.Sync(); err != nil {
			return fmt.Errorf("pagestore: journal sync: %w", err)
		}
		p.jOff += int64(len(batch))
	}
	for _, page := range fresh {
		p.journaled[page] = true
	}
	return nil
}

// CompleteFlush retires the rollback journal after the new checkpoint
// metadata is durably installed, and advances the restore point to that
// checkpoint (its epoch and boundary page count). The advance is
// unconditional — once the metadata rename landed, the installed
// boundary IS the new epoch, and recording anything else would stamp
// the next journal with a mismatched restore target. A journal file
// that cannot be removed is harmless: its epoch no longer matches the
// installed checkpoint, so recovery discards it, and the next flush
// recreates the file from scratch.
func (p *PageFile) CompleteFlush(epoch, boundaryPages uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.diskEpoch = epoch
	p.diskPages = boundaryPages
	if p.jf != nil {
		_ = p.jf.Close()
		p.jf = nil
		p.journaled = nil
		_ = os.Remove(p.cfg.journalPath())
	}
	return nil
}

// recoverJournal replays a matching rollback journal left by a torn
// checkpoint flush: every intact entry restores its slot's old bytes
// (clipping at the first torn entry — its pages were never overwritten,
// because entries are fsynced before their slots are touched), then the
// file is truncated to the boundary page count. A journal whose epoch
// does not match `epoch` belongs to a checkpoint that completed (or a
// directory state that no longer exists) and is discarded untouched.
func (p *PageFile) recoverJournal(epoch uint64) error {
	jpath := p.cfg.journalPath()
	data, err := os.ReadFile(jpath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	sawHeader := false
	match := false
	var boundary uint64
	_, err = parseCRCFrames(data, func(payload []byte) error {
		if !sawHeader {
			sawHeader = true
			if len(payload) != 24 {
				return nil
			}
			for i := range jrnlMagic {
				if payload[i] != jrnlMagic[i] {
					return nil
				}
			}
			jEpoch := binary.LittleEndian.Uint64(payload[8:16])
			boundary = binary.LittleEndian.Uint64(payload[16:24])
			match = jEpoch == epoch
			return nil
		}
		if !match || len(payload) < 9 {
			return nil
		}
		page := binary.LittleEndian.Uint64(payload[1:9])
		if page >= boundary {
			return nil // truncation restores it
		}
		switch payload[0] {
		case 0: // hole: zero the slot header so the page reads unwritten
			zero := make([]byte, pageFrameHeader)
			if _, err := p.f.WriteAt(zero, p.frameOff(page)); err != nil {
				return fmt.Errorf("pagestore: journal restore of page %d: %w", page, err)
			}
		case 1:
			old := payload[9:]
			if _, err := decodePageFrame(old, page, p.pageSize); err != nil {
				return fmt.Errorf("pagestore: journal entry for page %d: %w", page, err)
			}
			if _, err := p.f.WriteAt(old, p.frameOff(page)); err != nil {
				return fmt.Errorf("pagestore: journal restore of page %d: %w", page, err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if match {
		if err := p.f.Truncate(p.frameOff(boundary)); err != nil {
			return fmt.Errorf("pagestore: journal truncate: %w", err)
		}
		if err := p.f.Sync(); err != nil {
			return err
		}
	}
	if err := os.Remove(jpath); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

var _ storage.PageDevice = (*PageFile)(nil)
