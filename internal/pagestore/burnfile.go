package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"repro/internal/storage"
)

// Sector frames: each burned sector occupies a fixed slot of
// burnFrameHeader + SectorSize bytes — the payload length (1..SectorSize;
// an Append never burns an empty sector, so a zeroed slot can never
// validate) and its CRC32-C.
const burnFrameHeader = 8

// BurnConfig configures a BurnFile.
type BurnConfig struct {
	Path       string
	SectorSize int
	// Wrap is the fault-injection seam (storage.TornBlockFile).
	Wrap func(storage.BlockFile) storage.BlockFile
}

// ReopenReport says what OpenBurn found past the checkpoint boundary.
type ReopenReport struct {
	// OrphanSectors were burned intact after the boundary but are
	// referenced by nothing the boundary image knows: kept as burned
	// waste, exactly as unacknowledged burns on write-once media are.
	OrphanSectors uint64
	// Clipped reports whether a torn tail was truncated away, and
	// ClippedAt the first bad sector.
	Clipped   bool
	ClippedAt uint64
}

// BurnFile is the file-backed WORM disk: an append-only run of
// CRC-guarded sector frames implementing storage.WORMDevice. Appends
// burn consolidated variable-length runs (§3.4) and are never
// rewritten; durability comes from the checkpoint's Sync, and reopening
// verifies the unsynced tail sector by sector, clipping it at the first
// torn frame. It is safe for concurrent use.
type BurnFile struct {
	mu         sync.Mutex
	f          storage.BlockFile
	sectorSize int
	reserved   uint64 // == sectors burned; appends only
	stats      storage.WORMStats
}

// CreateBurn makes a fresh, empty burn file.
func CreateBurn(cfg BurnConfig) (*BurnFile, error) {
	if cfg.SectorSize <= 0 {
		return nil, fmt.Errorf("pagestore: sector size %d", cfg.SectorSize)
	}
	f, err := openBlock(cfg.Path, true, cfg.Wrap)
	if err != nil {
		return nil, fmt.Errorf("pagestore: create %s: %w", cfg.Path, err)
	}
	if err := writeFileHeader(f, burnMagic, cfg.SectorSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s: write header: %w", cfg.Path, err)
	}
	return &BurnFile{f: f, sectorSize: cfg.SectorSize}, nil
}

// OpenBurn reattaches to an existing burn file. The installed checkpoint
// guarantees `durable` sectors (fsynced at the boundary) with cumulative
// stats `base`; the tail past them was never acknowledged, so it is
// verified frame by frame — intact sectors stay as burned waste
// (write-once media cannot un-burn), and the file is truncated at the
// first torn or corrupt frame.
func OpenBurn(cfg BurnConfig, durable uint64, base storage.WORMStats) (*BurnFile, ReopenReport, error) {
	f, err := openBlock(cfg.Path, false, cfg.Wrap)
	if err != nil {
		return nil, ReopenReport{}, fmt.Errorf("pagestore: open %s: %w", cfg.Path, err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()
	size, err := readFileHeader(f, burnMagic, cfg.Path)
	if err != nil {
		return nil, ReopenReport{}, err
	}
	if cfg.SectorSize != 0 && cfg.SectorSize != size {
		return nil, ReopenReport{}, fmt.Errorf("pagestore: %s has %d-byte sectors, config asks for %d",
			cfg.Path, size, cfg.SectorSize)
	}
	b := &BurnFile{f: f, sectorSize: size, reserved: durable, stats: base}
	var rep ReopenReport
	buf := make([]byte, burnFrameHeader+size)
	for s := durable; ; s++ {
		n, rerr := f.ReadAt(buf, b.frameOff(s))
		if rerr != nil && rerr != io.EOF {
			return nil, ReopenReport{}, fmt.Errorf("pagestore: %s: verify sector %d: %w", cfg.Path, s, rerr)
		}
		if n == 0 {
			break // clean end of file
		}
		plen, valid := decodeBurnFrame(buf[:n], size)
		if !valid {
			rep.Clipped = true
			rep.ClippedAt = s
			if err := f.Truncate(b.frameOff(s)); err != nil {
				return nil, ReopenReport{}, fmt.Errorf("pagestore: %s: clip torn tail at sector %d: %w", cfg.Path, s, err)
			}
			if err := f.Sync(); err != nil {
				return nil, ReopenReport{}, err
			}
			break
		}
		// An intact unacknowledged burn: keep it, account it.
		b.reserved = s + 1
		rep.OrphanSectors++
		b.stats.SectorsBurned++
		b.stats.SectorWrites++
		b.stats.PayloadBytes += uint64(plen)
		b.stats.WastedBytes += uint64(size - plen)
	}
	ok = true
	return b, rep, nil
}

// frameOff returns the file offset of sector s's slot.
func (b *BurnFile) frameOff(s uint64) int64 {
	return fileHeaderSize + int64(s)*int64(burnFrameHeader+b.sectorSize)
}

// decodeBurnFrame validates one sector slot and returns its payload
// length. Zeroed or short slots (holes, torn writes) never validate.
func decodeBurnFrame(buf []byte, sectorSize int) (plen int, valid bool) {
	if len(buf) < burnFrameHeader {
		return 0, false
	}
	plen = int(binary.LittleEndian.Uint32(buf[0:4]))
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if plen < 1 || plen > sectorSize || burnFrameHeader+plen > len(buf) {
		return 0, false
	}
	if crc32.Checksum(buf[burnFrameHeader:burnFrameHeader+plen], castagnoli) != crc {
		return 0, false
	}
	return plen, true
}

// SectorSize returns the fixed sector size in bytes.
func (b *BurnFile) SectorSize() int { return b.sectorSize }

// Burned returns the number of sectors burned so far.
func (b *BurnFile) Burned() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reserved
}

// Append burns data as a consolidated run of sectors at the end of the
// file and returns its address: the TSB-tree's high-utilization
// migration path. Every sector of the run is filled to capacity except
// possibly the last. The burn is durable only after the next Sync (the
// checkpoint boundary); an unsynced run that a crash tears is clipped
// on reopen, and the commit that wrote it is replayed from the WAL.
func (b *BurnFile) Append(data []byte) (storage.Addr, error) {
	if len(data) == 0 {
		return storage.NilAddr, fmt.Errorf("pagestore: empty append")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	nsect := (len(data) + b.sectorSize - 1) / b.sectorSize
	first := b.reserved
	buf := make([]byte, 0, nsect*(burnFrameHeader+b.sectorSize))
	for i := 0; i < nsect; i++ {
		lo := i * b.sectorSize
		hi := min(lo+b.sectorSize, len(data))
		chunk := data[lo:hi]
		var hdr [burnFrameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(chunk)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(chunk, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, chunk...)
		if len(chunk) < b.sectorSize {
			buf = append(buf, make([]byte, b.sectorSize-len(chunk))...)
		}
	}
	start := time.Now()
	if _, err := b.f.WriteAt(buf, b.frameOff(first)); err != nil {
		// The run may be partially on disk; reserve it anyway so no
		// later append can overlap a half-burned slot (write-once),
		// and count the whole run as burned waste — the capacity is
		// consumed whether or not the bits landed, and Burned() must
		// never run ahead of the SectorsBurned accounting.
		b.reserved += uint64(nsect)
		b.stats.SectorsBurned += uint64(nsect)
		b.stats.WastedBytes += uint64(nsect * b.sectorSize)
		return storage.NilAddr, fmt.Errorf("pagestore: burn at sector %d: %w", first, err)
	}
	b.reserved += uint64(nsect)
	b.stats.Appends++
	b.stats.SectorWrites += uint64(nsect)
	b.stats.SectorsBurned += uint64(nsect)
	b.stats.PayloadBytes += uint64(len(data))
	b.stats.WastedBytes += uint64(nsect*b.sectorSize - len(data))
	b.stats.SimTime += time.Since(start)
	return storage.Addr{Kind: storage.KindWORM, Off: first, Len: uint32(len(data))}, nil
}

// ReadAt reads back the payload of a run written by Append, verifying
// each sector's CRC.
func (b *BurnFile) ReadAt(addr storage.Addr) ([]byte, error) {
	if addr.Kind != storage.KindWORM {
		return nil, fmt.Errorf("%w: non-WORM address %s", storage.ErrBadPage, addr)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	start := time.Now()
	out := make([]byte, 0, addr.Len)
	buf := make([]byte, burnFrameHeader+b.sectorSize)
	for s := addr.Off; uint32(len(out)) < addr.Len; s++ {
		if s >= b.reserved {
			return nil, fmt.Errorf("%w: sector %d", storage.ErrUnwritten, s)
		}
		n, err := b.f.ReadAt(buf, b.frameOff(s))
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("pagestore: read sector %d: %w", s, err)
		}
		plen, valid := decodeBurnFrame(buf[:n], b.sectorSize)
		if !valid {
			return nil, fmt.Errorf("%w: sector %d", ErrCorrupt, s)
		}
		out = append(out, buf[burnFrameHeader:burnFrameHeader+plen]...)
		b.stats.SectorReads++
	}
	b.stats.SimTime += time.Since(start)
	return out[:addr.Len], nil
}

// Sync makes every burned sector durable: the checkpoint boundary
// barrier.
func (b *BurnFile) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Sync()
}

// Stats returns a snapshot of the accounting counters (cumulative
// across reopens: OpenBurn seeds them from the checkpoint metadata).
func (b *BurnFile) Stats() storage.WORMStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close closes the burn file.
func (b *BurnFile) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Close()
}

var _ storage.WORMDevice = (*BurnFile)(nil)
