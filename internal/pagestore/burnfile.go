package pagestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Sector frames: each burned sector occupies a fixed slot of
// burnFrameHeader + SectorSize bytes — the payload length (1..SectorSize;
// an Append never burns an empty sector, so a zeroed slot can never
// validate) and its CRC32-C.
const burnFrameHeader = 8

// BurnConfig configures a BurnFile.
type BurnConfig struct {
	Path       string
	SectorSize int
	// Wrap is the fault-injection seam (storage.TornBlockFile).
	Wrap func(storage.BlockFile) storage.BlockFile
}

func (c BurnConfig) journalPath() string { return c.Path + ".journal" }

// ReopenReport says what OpenBurn found past the checkpoint boundary.
type ReopenReport struct {
	// OrphanSectors were burned intact after the boundary but are
	// referenced by nothing the boundary image knows: kept as burned
	// waste, exactly as unacknowledged burns on write-once media are.
	OrphanSectors uint64
	// OrphanPayloadBytes is the payload carried by those orphan sectors:
	// dead bytes nothing will ever reference, reclaimable only by a
	// compaction.
	OrphanPayloadBytes uint64
	// Clipped reports whether a torn tail was truncated away, and
	// ClippedAt the first bad sector.
	Clipped   bool
	ClippedAt uint64
}

// BurnFile is the file-backed WORM disk: an append-only run of
// CRC-guarded sector frames implementing storage.WORMDevice. Appends
// burn consolidated variable-length runs (§3.4) and are never
// rewritten; durability comes from the checkpoint's Sync, and reopening
// verifies the unsynced tail sector by sector, clipping it at the first
// torn frame. It is safe for concurrent use.
type BurnFile struct {
	mu         sync.Mutex //tsb:latch level=7 name=burn-file
	cfg        BurnConfig
	f          storage.BlockFile
	sectorSize int
	reserved   uint64 // == sectors burned; appends only (except compaction)
	stats      storage.WORMStats

	// Device latency instruments; recorded under the burn-file latch the
	// operations already hold, named by RegisterMetrics.
	burnHist obs.Histogram // one Append run per observation
	readHist obs.Histogram // one ReadAt run per observation
}

// CreateBurn makes a fresh, empty burn file, removing any stale
// compaction journal.
func CreateBurn(cfg BurnConfig) (*BurnFile, error) {
	if cfg.SectorSize <= 0 {
		return nil, fmt.Errorf("pagestore: sector size %d", cfg.SectorSize)
	}
	f, err := openBlock(cfg.Path, true, cfg.Wrap)
	if err != nil {
		return nil, fmt.Errorf("pagestore: create %s: %w", cfg.Path, err)
	}
	if err := writeFileHeader(f, burnMagic, cfg.SectorSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s: write header: %w", cfg.Path, err)
	}
	if err := os.Remove(cfg.journalPath()); err != nil && !os.IsNotExist(err) {
		f.Close()
		return nil, err
	}
	return &BurnFile{cfg: cfg, f: f, sectorSize: cfg.SectorSize}, nil
}

// OpenBurn reattaches to an existing burn file. The installed checkpoint
// (epoch `epoch`) guarantees `durable` sectors (fsynced at the boundary)
// with cumulative stats `base`; the tail past them was never
// acknowledged, so it is verified frame by frame — intact sectors stay
// as burned waste (write-once media cannot un-burn), and the file is
// truncated at the first torn or corrupt frame. A compaction journal
// whose epoch matches is replayed first (the compaction's checkpoint was
// never installed, so the rewritten region is restored to the boundary
// image); a stale journal is discarded.
func OpenBurn(cfg BurnConfig, durable uint64, base storage.WORMStats, epoch uint64) (*BurnFile, ReopenReport, error) {
	f, err := openBlock(cfg.Path, false, cfg.Wrap)
	if err != nil {
		return nil, ReopenReport{}, fmt.Errorf("pagestore: open %s: %w", cfg.Path, err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()
	size, err := readFileHeader(f, burnMagic, cfg.Path)
	if err != nil {
		return nil, ReopenReport{}, err
	}
	if cfg.SectorSize != 0 && cfg.SectorSize != size {
		return nil, ReopenReport{}, fmt.Errorf("pagestore: %s has %d-byte sectors, config asks for %d",
			cfg.Path, size, cfg.SectorSize)
	}
	b := &BurnFile{cfg: cfg, f: f, sectorSize: size, reserved: durable, stats: base}
	if err := b.recoverCompactionJournal(epoch); err != nil {
		return nil, ReopenReport{}, err
	}
	var rep ReopenReport
	buf := make([]byte, burnFrameHeader+size)
	for s := durable; ; s++ {
		n, rerr := f.ReadAt(buf, b.frameOff(s))
		if rerr != nil && rerr != io.EOF {
			return nil, ReopenReport{}, fmt.Errorf("pagestore: %s: verify sector %d: %w", cfg.Path, s, rerr)
		}
		if n == 0 {
			break // clean end of file
		}
		plen, valid := decodeBurnFrame(buf[:n], size)
		if !valid {
			rep.Clipped = true
			rep.ClippedAt = s
			if err := f.Truncate(b.frameOff(s)); err != nil {
				return nil, ReopenReport{}, fmt.Errorf("pagestore: %s: clip torn tail at sector %d: %w", cfg.Path, s, err)
			}
			if err := f.Sync(); err != nil {
				return nil, ReopenReport{}, err
			}
			break
		}
		// An intact unacknowledged burn: keep it, account it.
		b.reserved = s + 1
		rep.OrphanSectors++
		rep.OrphanPayloadBytes += uint64(plen)
		b.stats.SectorsBurned++
		b.stats.SectorWrites++
		b.stats.PayloadBytes += uint64(plen)
		b.stats.WastedBytes += uint64(size - plen)
	}
	ok = true
	return b, rep, nil
}

// frameOff returns the file offset of sector s's slot.
func (b *BurnFile) frameOff(s uint64) int64 {
	return fileHeaderSize + int64(s)*int64(burnFrameHeader+b.sectorSize)
}

// decodeBurnFrame validates one sector slot and returns its payload
// length. Zeroed or short slots (holes, torn writes) never validate.
func decodeBurnFrame(buf []byte, sectorSize int) (plen int, valid bool) {
	if len(buf) < burnFrameHeader {
		return 0, false
	}
	plen = int(binary.LittleEndian.Uint32(buf[0:4]))
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if plen < 1 || plen > sectorSize || burnFrameHeader+plen > len(buf) {
		return 0, false
	}
	if crc32.Checksum(buf[burnFrameHeader:burnFrameHeader+plen], castagnoli) != crc {
		return 0, false
	}
	return plen, true
}

// SectorSize returns the fixed sector size in bytes.
func (b *BurnFile) SectorSize() int { return b.sectorSize }

// Burned returns the number of sectors burned so far.
func (b *BurnFile) Burned() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reserved
}

// Append burns data as a consolidated run of sectors at the end of the
// file and returns its address: the TSB-tree's high-utilization
// migration path. Every sector of the run is filled to capacity except
// possibly the last. The burn is durable only after the next Sync (the
// checkpoint boundary); an unsynced run that a crash tears is clipped
// on reopen, and the commit that wrote it is replayed from the WAL.
func (b *BurnFile) Append(data []byte) (storage.Addr, error) {
	if len(data) == 0 {
		return storage.NilAddr, fmt.Errorf("pagestore: empty append")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	nsect := (len(data) + b.sectorSize - 1) / b.sectorSize
	first := b.reserved
	buf := make([]byte, 0, nsect*(burnFrameHeader+b.sectorSize))
	for i := 0; i < nsect; i++ {
		lo := i * b.sectorSize
		hi := min(lo+b.sectorSize, len(data))
		chunk := data[lo:hi]
		var hdr [burnFrameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(chunk)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(chunk, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, chunk...)
		if len(chunk) < b.sectorSize {
			buf = append(buf, make([]byte, b.sectorSize-len(chunk))...)
		}
	}
	start := time.Now()
	if _, err := b.f.WriteAt(buf, b.frameOff(first)); err != nil {
		// The run may be partially on disk; reserve it anyway so no
		// later append can overlap a half-burned slot (write-once),
		// and count the whole run as burned waste — the capacity is
		// consumed whether or not the bits landed, and Burned() must
		// never run ahead of the SectorsBurned accounting.
		b.reserved += uint64(nsect)
		b.stats.SectorsBurned += uint64(nsect)
		b.stats.WastedBytes += uint64(nsect * b.sectorSize)
		return storage.NilAddr, fmt.Errorf("pagestore: burn at sector %d: %w", first, err)
	}
	b.reserved += uint64(nsect)
	b.stats.Appends++
	b.stats.SectorWrites += uint64(nsect)
	b.stats.SectorsBurned += uint64(nsect)
	b.stats.PayloadBytes += uint64(len(data))
	b.stats.WastedBytes += uint64(nsect*b.sectorSize - len(data))
	elapsed := time.Since(start)
	b.stats.SimTime += elapsed
	b.burnHist.Observe(elapsed)
	return storage.Addr{Kind: storage.KindWORM, Off: first, Len: uint32(len(data))}, nil
}

// ReadAt reads back the payload of a run written by Append, verifying
// each sector's CRC.
func (b *BurnFile) ReadAt(addr storage.Addr) ([]byte, error) {
	if addr.Kind != storage.KindWORM {
		return nil, fmt.Errorf("%w: non-WORM address %s", storage.ErrBadPage, addr)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	start := time.Now()
	out := make([]byte, 0, addr.Len)
	buf := make([]byte, burnFrameHeader+b.sectorSize)
	for s := addr.Off; uint32(len(out)) < addr.Len; s++ {
		if s >= b.reserved {
			return nil, fmt.Errorf("%w: sector %d", storage.ErrUnwritten, s)
		}
		n, err := b.f.ReadAt(buf, b.frameOff(s))
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("pagestore: read sector %d: %w", s, err)
		}
		plen, valid := decodeBurnFrame(buf[:n], b.sectorSize)
		if !valid {
			return nil, fmt.Errorf("%w: sector %d", ErrCorrupt, s)
		}
		out = append(out, buf[burnFrameHeader:burnFrameHeader+plen]...)
		b.stats.SectorReads++
	}
	elapsed := time.Since(start)
	b.stats.SimTime += elapsed
	b.readHist.Observe(elapsed)
	return out[:addr.Len], nil
}

// Sync makes every burned sector durable: the checkpoint boundary
// barrier.
func (b *BurnFile) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Sync()
}

// RegisterMetrics names the file's device-latency histograms in r.
func (b *BurnFile) RegisterMetrics(r *obs.Registry) {
	dev := obs.Label{Key: "device", Value: "worm"}
	r.RegisterHistogram("tsb_device_burn_seconds", "WORM consolidated-run burn latency", &b.burnHist, dev)
	r.RegisterHistogram("tsb_device_read_seconds", "WORM run read-back latency", &b.readHist, dev)
}

// Stats returns a snapshot of the accounting counters (cumulative
// across reopens: OpenBurn seeds them from the checkpoint metadata).
func (b *BurnFile) Stats() storage.WORMStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close closes the burn file.
func (b *BurnFile) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.Close()
}

// --- WORM compaction ---
//
// Compaction is the one operation that rewrites burned sectors: the
// caller (internal/db's maintenance scheduler) has proven every sector
// from `boundary` up is either dead (unreferenced) or belongs to a live
// run it passes back in `payloads`, in ascending old-offset order with
// relocated child references already patched. CompactRegion journals the
// old region bytes first — the same rollback protocol as the page file's
// checkpoint flush — then rewrites the region with the live runs packed
// from the boundary, truncates the file, and adjusts the content
// accounting. The journal is retired by CompleteCompaction only after
// the checkpoint recording the new boundary is durably installed; until
// then a crash restores the old region (OpenBurn replays a matching
// journal), so the pre-compaction checkpoint remains recoverable.

// saturatingSub subtracts without wrapping: device accounting of runs
// torn by injected write faults is intentionally conservative (a failed
// run is all waste even if some sectors landed intact), so region
// recomputation may not match it bit for bit.
func saturatingSub(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// CompactRegion rewrites the sectors from boundary to the end of the
// file with the given live-run payloads, packed from boundary on, and
// truncates the rest: dead runs between live ones are squeezed out and
// their capacity reclaimed. epoch is the currently installed checkpoint
// epoch — it stamps the rollback journal so recovery can tell a torn
// compaction (restore) from a completed one (discard). The returned
// addresses are the relocated runs, in payload order. Callers must
// guarantee no concurrent Append (the scheduler re-checks Burned() under
// every write latch before committing to the rewrite).
func (b *BurnFile) CompactRegion(epoch, boundary uint64, payloads [][]byte) ([]storage.Addr, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if boundary > b.reserved {
		return nil, fmt.Errorf("pagestore: compaction boundary %d past burned end %d", boundary, b.reserved)
	}
	oldReserved := b.reserved
	regionSectors := oldReserved - boundary
	frameSize := burnFrameHeader + b.sectorSize

	// Journal the old region before touching it.
	region := make([]byte, int(regionSectors)*frameSize)
	n, err := b.f.ReadAt(region, b.frameOff(boundary))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("pagestore: compaction read of old region: %w", err)
	}
	region = region[:n] // short reads past holes/clipped tails are fine: restore rewrites what existed
	jf, err := openBlock(b.cfg.journalPath(), true, b.cfg.Wrap)
	if err != nil {
		return nil, fmt.Errorf("pagestore: create compaction journal: %w", err)
	}
	hdr := make([]byte, 0, 32)
	hdr = append(hdr, jrnlMagic[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, epoch)
	hdr = binary.LittleEndian.AppendUint64(hdr, boundary)
	hdr = binary.LittleEndian.AppendUint64(hdr, oldReserved)
	framed := crcFrame(nil, hdr)
	framed = crcFrame(framed, region)
	if _, err := jf.WriteAt(framed, 0); err != nil {
		jf.Close()
		return nil, fmt.Errorf("pagestore: compaction journal write: %w", err)
	}
	if err := jf.Sync(); err != nil {
		jf.Close()
		return nil, fmt.Errorf("pagestore: compaction journal sync: %w", err)
	}
	if err := jf.Close(); err != nil {
		return nil, err
	}

	// Retire the old region from the content accounting.
	var oldPayload, oldWaste uint64
	for s := 0; s < int(regionSectors); s++ {
		lo := s * frameSize
		hi := min(lo+frameSize, len(region))
		if lo >= len(region) {
			oldWaste += uint64(b.sectorSize)
			continue
		}
		if plen, valid := decodeBurnFrame(region[lo:hi], b.sectorSize); valid {
			oldPayload += uint64(plen)
			oldWaste += uint64(b.sectorSize - plen)
		} else {
			oldWaste += uint64(b.sectorSize)
		}
	}
	b.stats.SectorsBurned = saturatingSub(b.stats.SectorsBurned, regionSectors)
	b.stats.PayloadBytes = saturatingSub(b.stats.PayloadBytes, oldPayload)
	b.stats.WastedBytes = saturatingSub(b.stats.WastedBytes, oldWaste)

	// Pack the live runs from the boundary on.
	start := time.Now()
	addrs := make([]storage.Addr, 0, len(payloads))
	next := boundary
	for _, data := range payloads {
		if len(data) == 0 {
			return nil, fmt.Errorf("pagestore: empty compaction payload")
		}
		nsect := (len(data) + b.sectorSize - 1) / b.sectorSize
		buf := make([]byte, 0, nsect*frameSize)
		for i := 0; i < nsect; i++ {
			lo := i * b.sectorSize
			hi := min(lo+b.sectorSize, len(data))
			chunk := data[lo:hi]
			var fh [burnFrameHeader]byte
			binary.LittleEndian.PutUint32(fh[0:4], uint32(len(chunk)))
			binary.LittleEndian.PutUint32(fh[4:8], crc32.Checksum(chunk, castagnoli))
			buf = append(buf, fh[:]...)
			buf = append(buf, chunk...)
			if len(chunk) < b.sectorSize {
				buf = append(buf, make([]byte, b.sectorSize-len(chunk))...)
			}
		}
		if _, err := b.f.WriteAt(buf, b.frameOff(next)); err != nil {
			return nil, fmt.Errorf("pagestore: compaction write at sector %d: %w", next, err)
		}
		addrs = append(addrs, storage.Addr{Kind: storage.KindWORM, Off: next, Len: uint32(len(data))})
		b.stats.SectorWrites += uint64(nsect)
		b.stats.SectorsBurned += uint64(nsect)
		b.stats.PayloadBytes += uint64(len(data))
		b.stats.WastedBytes += uint64(nsect*b.sectorSize - len(data))
		next += uint64(nsect)
	}
	if err := b.f.Truncate(b.frameOff(next)); err != nil {
		return nil, fmt.Errorf("pagestore: compaction truncate: %w", err)
	}
	if err := b.f.Sync(); err != nil {
		return nil, err
	}
	b.reserved = next
	b.stats.SimTime += time.Since(start)
	return addrs, nil
}

// CompleteCompaction retires the compaction journal once the checkpoint
// recording the new boundary is durably installed. A journal that cannot
// be removed is harmless: its epoch no longer matches the installed
// checkpoint, so recovery discards it.
func (b *BurnFile) CompleteCompaction() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := os.Remove(b.cfg.journalPath()); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// recoverCompactionJournal replays a matching compaction journal left by
// a torn compaction: the old region bytes are restored at the boundary
// and the file truncated back to the old burned end, so the device again
// reconstructs to the installed (pre-compaction) checkpoint. A journal
// whose epoch does not match belongs to a compaction whose checkpoint
// completed and is discarded. A torn journal is also discarded: the
// journal is fsynced before the region is touched, so a torn journal
// means an untouched region.
func (b *BurnFile) recoverCompactionJournal(epoch uint64) error {
	jpath := b.cfg.journalPath()
	data, err := os.ReadFile(jpath)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var frames [][]byte
	clean, err := parseCRCFrames(data, func(payload []byte) error {
		frames = append(frames, payload)
		return nil
	})
	if err != nil {
		return err
	}
	restore := clean && len(frames) == 2 && len(frames[0]) == 32
	if restore {
		for i := range jrnlMagic {
			if frames[0][i] != jrnlMagic[i] {
				restore = false
				break
			}
		}
	}
	if restore {
		jEpoch := binary.LittleEndian.Uint64(frames[0][8:16])
		boundary := binary.LittleEndian.Uint64(frames[0][16:24])
		oldReserved := binary.LittleEndian.Uint64(frames[0][24:32])
		if jEpoch == epoch {
			if len(frames[1]) > 0 {
				if _, err := b.f.WriteAt(frames[1], b.frameOff(boundary)); err != nil {
					return fmt.Errorf("pagestore: compaction journal restore: %w", err)
				}
			}
			if err := b.f.Truncate(b.frameOff(oldReserved)); err != nil {
				return fmt.Errorf("pagestore: compaction journal truncate: %w", err)
			}
			if err := b.f.Sync(); err != nil {
				return err
			}
		}
	}
	if err := os.Remove(jpath); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

var _ storage.WORMDevice = (*BurnFile)(nil)
