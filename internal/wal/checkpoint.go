package wal

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/record"
	"repro/internal/storage"
)

// CheckpointFormatVersion identifies the logical checkpoint format.
// Versions 1 and 2 were the gob whole-image quiescent checkpoints of
// db.SaveTo; version 3 is the incremental-friendly logical form: a
// CRC-framed dump of every committed version, per shard, plus the LSN
// the log was rotated at.
const CheckpointFormatVersion = 3

// PagedCheckpointFormatVersion identifies the paged checkpoint format:
// no version chunks — the database pages live in the device files
// (internal/pagestore), flushed before the checkpoint is installed —
// only a PagedMeta frame reattaching the engine to them at the
// page-consistent boundary the footer seals.
const PagedCheckpointFormatVersion = 4

const (
	checkpointName    = "CHECKPOINT"
	checkpointTmpName = "CHECKPOINT.tmp"
)

// checkpointChunk bounds how many versions one shard-chunk frame
// carries, so a frame stays a bounded unit of work and corruption loss.
const checkpointChunk = 512

// CheckpointInfo is the header of a checkpoint: everything recovery
// needs before it streams the version chunks.
type CheckpointInfo struct {
	// Shards is the key-range shard count the dump is partitioned by;
	// a durable database reopens with the same count.
	Shards int
	// Clock is the commit clock at the rotation boundary: every commit
	// at or before it is fully contained in the dump.
	Clock record.Timestamp
	// LSN is the rotation boundary: log records at or below it are
	// exactly the dump's contents (dumps are boundary-exact — nothing
	// stamped after Clock is included, so the log tail past this LSN is
	// replayed unconditionally), and segments wholly at or below it are
	// deleted after the checkpoint lands.
	LSN uint64
	// Secondaries names the secondary indexes registered when the
	// checkpoint was taken; reopening requires an extractor per name.
	Secondaries []string
	// Paged is the device/tree metadata of a paged (format v4)
	// checkpoint, nil for a logical (v3) one. A paged checkpoint has no
	// version chunks: the committed database is the device files
	// themselves, page-consistent at this boundary.
	Paged *PagedMeta
}

// WriteCheckpoint durably writes a checkpoint: header, then every
// shard's committed versions (dump(i) must return them boundary-exact —
// nothing stamped after info.Clock — and sorted so commit times never
// decrease; reload applies all shards in one globally time-sorted
// pass), then a footer proving completeness, all CRC-framed, fsynced to
// a temporary file and atomically renamed into place. wrap is the
// fault-injection seam (may be nil).
func WriteCheckpoint(dir string, wrap func(storage.LogFile) storage.LogFile, info CheckpointInfo, dump func(shard int) ([]record.Version, error)) (err error) {
	tmpPath := filepath.Join(dir, checkpointTmpName)
	raw, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create checkpoint: %w", err)
	}
	f := storage.LogFile(raw)
	if wrap != nil {
		f = wrap(f)
	}
	defer func() {
		if err != nil {
			_ = f.Close()
			_ = os.Remove(tmpPath)
		}
	}()

	write := func(payload []byte) error {
		if _, werr := f.Write(appendFrame(nil, payload)); werr != nil {
			return fmt.Errorf("wal: write checkpoint: %w", werr)
		}
		return nil
	}

	version := uint64(CheckpointFormatVersion)
	if info.Paged != nil {
		version = PagedCheckpointFormatVersion
	}
	e := record.NewEncoder(nil)
	e.Byte(frameCheckpointHeader)
	e.Uvarint(version)
	e.Uvarint(uint64(info.Shards))
	e.Time(info.Clock)
	e.Uvarint(info.LSN)
	e.Uvarint(uint64(len(info.Secondaries)))
	for _, name := range info.Secondaries {
		e.Blob([]byte(name))
	}
	if err = write(e.Bytes()); err != nil {
		return err
	}

	if info.Paged != nil {
		// A paged checkpoint carries no versions: the database pages
		// are already flushed into the device files. Only the
		// reattachment metadata is written.
		if err = write(encodePagedMeta(info.Paged)); err != nil {
			return err
		}
	} else {
		for shard := 0; shard < info.Shards; shard++ {
			vs, derr := dump(shard)
			if derr != nil {
				err = fmt.Errorf("wal: checkpoint dump of shard %d: %w", shard, derr)
				return err
			}
			for base := 0; base < len(vs); base += checkpointChunk {
				end := min(base+checkpointChunk, len(vs))
				e := record.NewEncoder(nil)
				e.Byte(frameShardChunk)
				e.Uvarint(uint64(shard))
				e.Versions(vs[base:end])
				if err = write(e.Bytes()); err != nil {
					return err
				}
			}
		}
	}

	e = record.NewEncoder(nil)
	e.Byte(frameCheckpointFooter)
	e.Uvarint(info.LSN)
	if err = write(e.Bytes()); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	if err = os.Rename(tmpPath, filepath.Join(dir, checkpointName)); err != nil {
		return fmt.Errorf("wal: install checkpoint: %w", err)
	}
	syncDir(dir)
	return nil
}

// ReadCheckpoint reads dir's checkpoint, streaming each shard chunk's
// versions through apply (in file order, which per shard is commit-time
// order). found=false means no checkpoint exists (a fresh or
// pre-first-checkpoint directory). A checkpoint is only ever installed
// complete, so a torn or incomplete one is corruption, not a crash
// artifact: the error says so.
func ReadCheckpoint(dir string, apply func(shard int, vs []record.Version) error) (info CheckpointInfo, found bool, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, checkpointName))
	if os.IsNotExist(err) {
		return CheckpointInfo{}, false, nil
	}
	if err != nil {
		return CheckpointInfo{}, false, err
	}
	sawHeader, sawFooter := false, false
	version := uint64(0)
	clean, err := parseFrames(buf, func(payload []byte) error {
		d := record.NewDecoder(payload)
		switch typ := d.Byte(); typ {
		case frameCheckpointHeader:
			if sawHeader {
				return fmt.Errorf("wal: duplicate checkpoint header")
			}
			sawHeader = true
			if version = d.Uvarint(); version != CheckpointFormatVersion && version != PagedCheckpointFormatVersion {
				return fmt.Errorf("wal: checkpoint format %d, want %d or %d",
					version, CheckpointFormatVersion, PagedCheckpointFormatVersion)
			}
			info.Shards = int(d.Uvarint())
			info.Clock = d.Time()
			info.LSN = d.Uvarint()
			n := d.Uvarint()
			if n > uint64(d.Remaining()) {
				return fmt.Errorf("wal: checkpoint header: %d secondaries", n)
			}
			for i := uint64(0); i < n; i++ {
				info.Secondaries = append(info.Secondaries, string(d.Blob()))
			}
			if err := d.Err(); err != nil {
				return fmt.Errorf("wal: checkpoint header: %w", err)
			}
			return nil
		case framePagedMeta:
			if !sawHeader || sawFooter || version != PagedCheckpointFormatVersion {
				return fmt.Errorf("wal: misplaced paged-meta frame")
			}
			if info.Paged != nil {
				return fmt.Errorf("wal: duplicate paged-meta frame")
			}
			m, merr := decodePagedMeta(d)
			if merr != nil {
				return merr
			}
			if len(m.Shards) != info.Shards {
				return fmt.Errorf("wal: paged meta has %d shard images, header says %d",
					len(m.Shards), info.Shards)
			}
			info.Paged = m
			return nil
		case frameShardChunk:
			if !sawHeader || sawFooter || version != CheckpointFormatVersion {
				return fmt.Errorf("wal: checkpoint chunk outside header/footer")
			}
			shard := int(d.Uvarint())
			vs := d.Versions()
			if err := d.Err(); err != nil {
				return fmt.Errorf("wal: checkpoint chunk: %w", err)
			}
			if shard < 0 || shard >= info.Shards {
				return fmt.Errorf("wal: checkpoint chunk for shard %d of %d", shard, info.Shards)
			}
			if apply == nil {
				return nil
			}
			return apply(shard, vs)
		case frameCheckpointFooter:
			if !sawHeader || sawFooter {
				return fmt.Errorf("wal: misplaced checkpoint footer")
			}
			sawFooter = true
			if lsn := d.Uvarint(); d.Err() != nil || lsn != info.LSN {
				return fmt.Errorf("wal: checkpoint footer LSN %d, header says %d", lsn, info.LSN)
			}
			return nil
		default:
			return fmt.Errorf("wal: unknown checkpoint frame type %d", typ)
		}
	})
	if err != nil {
		return CheckpointInfo{}, false, err
	}
	if !clean || !sawHeader || !sawFooter {
		return CheckpointInfo{}, false, fmt.Errorf("wal: checkpoint incomplete or corrupt")
	}
	if version == PagedCheckpointFormatVersion && info.Paged == nil {
		return CheckpointInfo{}, false, fmt.Errorf("wal: paged checkpoint missing its meta frame")
	}
	return info, true, nil
}

// ReadCheckpointInfo reads only the checkpoint header (still verifying
// every frame's CRC) — the inspection path for tools.
func ReadCheckpointInfo(dir string) (CheckpointInfo, bool, error) {
	return ReadCheckpoint(dir, nil)
}
