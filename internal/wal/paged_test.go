package wal

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

// TestPagedCheckpointRoundTrip: a v4 checkpoint's metadata survives
// write + read bit-exactly, and reads back as paged.
func TestPagedCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := &PagedMeta{
		Epoch:      7,
		PageSize:   4096,
		SectorSize: 1024,
		Alloc:      pagestore.AllocState{Pages: 42, Free: []uint64{3, 9}},
		MagStats:   storage.MagneticStats{Reads: 10, Writes: 20, Allocs: 44, Frees: 2, PagesInUse: 40, HighWater: 41},
		Burned:     17,
		WormStats:  storage.WORMStats{SectorWrites: 17, SectorsBurned: 17, PayloadBytes: 9000, WastedBytes: 1234, Appends: 5},
		Shards: []core.TreeImage{
			{
				Root: storage.Addr{Kind: storage.KindMagnetic, Off: 12},
				Now:  99,
				Stats: core.Stats{
					Inserts: 1000, Commits: 900, LeafTimeSplits: 7,
					RedundantVersions: 3, HistoricalNodes: 4, CurrentNodes: 11, Height: 3,
				},
				Marked:       []uint64{5, 8},
				Policy:       core.PolicyLastUpdate,
				MaxKeySize:   64,
				MaxValueSize: 512,
				LeafCapacity: 4096, IndexCapacity: 4096,
			},
			{
				Root:       storage.Addr{Kind: storage.KindMagnetic, Off: 30},
				Now:        99,
				Policy:     core.PolicyKeyPref,
				MaxKeySize: 64, MaxValueSize: 512, LeafCapacity: 4096, IndexCapacity: 4096,
			},
		},
		Secondaries: map[string]core.TreeImage{
			"dept": {
				Root:       storage.Addr{Kind: storage.KindMagnetic, Off: 31},
				Now:        98,
				Policy:     core.PolicyLastUpdate,
				MaxKeySize: 129, MaxValueSize: 512, LeafCapacity: 4096, IndexCapacity: 4096,
			},
		},
		Pending: []txn.PendingWrite{
			{Key: record.StringKey("inflight-a"), TxnID: 12},
			{Key: record.StringKey("inflight-b"), TxnID: 13},
		},
	}
	info := CheckpointInfo{
		Shards:      2,
		Clock:       99,
		LSN:         456,
		Secondaries: []string{"dept"},
		Paged:       meta,
	}
	if err := WriteCheckpoint(dir, nil, info, nil); err != nil {
		t.Fatal(err)
	}
	got, found, err := ReadCheckpointInfo(dir)
	if err != nil || !found {
		t.Fatalf("read: found=%v err=%v", found, err)
	}
	if got.Paged == nil {
		t.Fatal("paged meta missing")
	}
	if got.Shards != 2 || got.Clock != 99 || got.LSN != 456 {
		t.Fatalf("header: %+v", got)
	}
	if !reflect.DeepEqual(got.Paged, meta) {
		t.Fatalf("paged meta round trip:\n got %+v\nwant %+v", got.Paged, meta)
	}
	// A paged checkpoint has no version chunks to stream.
	_, _, err = ReadCheckpoint(dir, func(shard int, vs []record.Version) error {
		t.Fatalf("unexpected shard chunk for shard %d", shard)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
