package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"repro/internal/record"
	"repro/internal/txn"
)

// parseFrames walks buf frame by frame, calling fn on each CRC-valid
// payload. It returns clean=false when the walk stopped at a torn tail:
// a short header, a short payload, an empty or oversized length field,
// or a CRC mismatch — all the shapes a crashed append leaves behind.
// An error from fn aborts the walk.
func parseFrames(buf []byte, fn func(payload []byte) error) (clean bool, err error) {
	off := 0
	for off+frameHeaderSize <= len(buf) {
		n := binary.LittleEndian.Uint32(buf[off : off+4])
		crc := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if n == 0 || n > maxFrame || off+frameHeaderSize+int(n) > len(buf) {
			return false, nil
		}
		payload := buf[off+frameHeaderSize : off+frameHeaderSize+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return false, nil
		}
		if err := fn(payload); err != nil {
			return true, err
		}
		off += frameHeaderSize + int(n)
	}
	return off == len(buf), nil
}

// decodeCommit parses a commit frame payload.
func decodeCommit(payload []byte) (lsn uint64, rec txn.CommitRecord, err error) {
	d := record.NewDecoder(payload)
	if typ := d.Byte(); typ != frameCommit {
		return 0, rec, fmt.Errorf("wal: frame type %d, want commit", typ)
	}
	lsn = d.Uvarint()
	rec.TxnID = d.Uvarint()
	rec.Time = d.Time()
	rec.Versions = d.Versions()
	if err := d.Err(); err != nil {
		return 0, rec, fmt.Errorf("wal: commit frame: %w", err)
	}
	if d.Remaining() != 0 {
		return 0, rec, fmt.Errorf("wal: commit frame: %d trailing bytes", d.Remaining())
	}
	return lsn, rec, nil
}

// ReplayFile replays one segment: fn is called, in log order, for every
// intact commit record with LSN strictly greater than afterLSN. It
// returns the LSN of the last intact frame (0 if none), and clean=false
// when the segment ends in a torn tail — legal for the segment a crash
// interrupted, and for an old segment whose tail was torn by an earlier
// crash (the records after the tear live in the next segment).
func ReplayFile(path string, afterLSN uint64, fn func(lsn uint64, rec txn.CommitRecord) error) (lastLSN uint64, clean bool, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, false, err
	}
	clean, err = parseFrames(buf, func(payload []byte) error {
		lsn, rec, derr := decodeCommit(payload)
		if derr != nil {
			return fmt.Errorf("%s: %w", path, derr)
		}
		if lastLSN != 0 && lsn != lastLSN+1 {
			return fmt.Errorf("wal: %s: LSN %d after %d, want contiguous", path, lsn, lastLSN)
		}
		lastLSN = lsn
		if lsn <= afterLSN {
			return nil
		}
		return fn(lsn, rec)
	})
	return lastLSN, clean, err
}
