package wal

// Checkpoint format v4: the paged-device checkpoint. Where the logical
// v3 checkpoint carries the whole committed database as version chunks,
// a v4 checkpoint carries only the metadata that reattaches the engine
// to its file-backed devices (internal/pagestore) at a page-consistent
// boundary — the page allocator, the WORM burned-sector boundary, the
// cumulative device accounting, and each tree's image (root pointer,
// clock, counters, §3.5 marked set). The pages themselves were flushed
// and fsynced into the device files before this metadata is installed,
// so recovery is: restore any torn flush from the rollback journal,
// reattach, replay the WAL tail past the boundary LSN.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

// PagedMeta is the device/tree metadata of a v4 (paged) checkpoint.
type PagedMeta struct {
	// Epoch numbers installed paged checkpoints (monotonically, from 1
	// for the open-time seal). The page file's rollback journal records
	// which epoch's image it restores; matching epochs is how recovery
	// distinguishes a torn flush from a completed one.
	Epoch uint64
	// PageSize / SectorSize fix the device geometry; reopening adopts
	// them.
	PageSize   int
	SectorSize int
	// Alloc is the magnetic page allocator at the boundary.
	Alloc pagestore.AllocState
	// MagStats / WormStats carry the cumulative device accounting
	// across reopens (SpaceM, SpaceO, burned vs. payload).
	MagStats storage.MagneticStats
	// Burned is the WORM sector count at the boundary: sectors below it
	// are fsynced and trusted; the tail past it is verified and clipped
	// on reopen.
	Burned    uint64
	WormStats storage.WORMStats
	// Shards holds one tree image per key-range shard, in shard order;
	// Secondaries one per secondary index, keyed by name.
	Shards      []core.TreeImage
	Secondaries map[string]core.TreeImage
	// Pending lists the write locks held at the boundary: the keys
	// whose uncommitted pending versions the flushed pages may contain
	// (§4: uncommitted data lives, erasable, in the current database).
	// Those transactions died with the crash, so recovery erases each
	// pending version before replaying the WAL tail — the paged
	// equivalent of the logical dump's pending filter.
	Pending []txn.PendingWrite
	// GroupLSNs holds the per-shard capture boundary of a fuzzy
	// checkpoint: shard i's image and dirty pages were captured with the
	// log at GroupLSNs[i], quiescing only that shard. Replay applies a
	// committed version to its primary shard iff its record's LSN is
	// past that shard's boundary. Empty for pre-fuzzy checkpoints
	// (every shard was captured at the header LSN).
	GroupLSNs []uint64
	// SecLSN is the capture boundary of the secondary indexes (all
	// captured together under the secondary latch).
	SecLSN uint64
	// DeadBytes carries the engine-level dead-burn accounting across
	// reopens: payload bytes of WORM runs nothing references (abandoned
	// background migrations, crash orphans), reclaimable by compaction.
	DeadBytes uint64
}

func encodeDuration(e *record.Encoder, d int64) { e.Uvarint(uint64(d)) }

func encodeTreeImage(e *record.Encoder, img core.TreeImage) {
	e.Byte(byte(img.Root.Kind))
	e.Uvarint(img.Root.Off)
	e.Uvarint(uint64(img.Root.Len))
	e.Time(img.Now)
	s := img.Stats
	for _, v := range []uint64{
		s.Inserts, s.Commits, s.Aborts, s.Deletes, s.Restamps,
		s.LeafTimeSplits, s.LeafKeySplits, s.LeafTimeKeySplits,
		s.IndexTimeSplits, s.IndexKeySplits, s.RootSplits,
		s.ForcedTimeSplits, s.MarkedLeaves, s.RedundantVersions,
		s.RedundantIndexEntries, s.VersionsMigrated, s.BytesMigrated,
		s.HistoricalNodes, s.CurrentNodes,
	} {
		e.Uvarint(v)
	}
	e.Uvarint(uint64(s.Height))
	marked := append([]uint64(nil), img.Marked...)
	sort.Slice(marked, func(i, j int) bool { return marked[i] < marked[j] })
	e.Uvarint(uint64(len(marked)))
	for _, m := range marked {
		e.Uvarint(m)
	}
	e.Uvarint(math.Float64bits(img.Policy.KeySplitFraction))
	e.Uvarint(uint64(img.Policy.SplitTime))
	e.Uvarint(math.Float64bits(img.Policy.IndexKeySplitFraction))
	e.Uvarint(uint64(img.MaxKeySize))
	e.Uvarint(uint64(img.MaxValueSize))
	e.Uvarint(uint64(img.LeafCapacity))
	e.Uvarint(uint64(img.IndexCapacity))
}

func decodeTreeImage(d *record.Decoder) core.TreeImage {
	var img core.TreeImage
	img.Root.Kind = storage.DeviceKind(d.Byte())
	img.Root.Off = d.Uvarint()
	img.Root.Len = uint32(d.Uvarint())
	img.Now = d.Time()
	dst := []*uint64{
		&img.Stats.Inserts, &img.Stats.Commits, &img.Stats.Aborts,
		&img.Stats.Deletes, &img.Stats.Restamps, &img.Stats.LeafTimeSplits,
		&img.Stats.LeafKeySplits, &img.Stats.LeafTimeKeySplits,
		&img.Stats.IndexTimeSplits, &img.Stats.IndexKeySplits,
		&img.Stats.RootSplits, &img.Stats.ForcedTimeSplits,
		&img.Stats.MarkedLeaves, &img.Stats.RedundantVersions,
		&img.Stats.RedundantIndexEntries, &img.Stats.VersionsMigrated,
		&img.Stats.BytesMigrated, &img.Stats.HistoricalNodes,
		&img.Stats.CurrentNodes,
	}
	for _, p := range dst {
		*p = d.Uvarint()
	}
	img.Stats.Height = int(d.Uvarint())
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		img.Marked = append(img.Marked, d.Uvarint())
	}
	img.Policy.KeySplitFraction = math.Float64frombits(d.Uvarint())
	img.Policy.SplitTime = core.SplitTimeChoice(d.Uvarint())
	img.Policy.IndexKeySplitFraction = math.Float64frombits(d.Uvarint())
	img.MaxKeySize = int(d.Uvarint())
	img.MaxValueSize = int(d.Uvarint())
	img.LeafCapacity = int(d.Uvarint())
	img.IndexCapacity = int(d.Uvarint())
	return img
}

func encodeMagStats(e *record.Encoder, s storage.MagneticStats) {
	e.Uvarint(s.Reads)
	e.Uvarint(s.Writes)
	e.Uvarint(s.Allocs)
	e.Uvarint(s.Frees)
	e.Uvarint(uint64(s.PagesInUse))
	e.Uvarint(uint64(s.HighWater))
	encodeDuration(e, int64(s.SimTime))
}

func decodeMagStats(d *record.Decoder) storage.MagneticStats {
	var s storage.MagneticStats
	s.Reads = d.Uvarint()
	s.Writes = d.Uvarint()
	s.Allocs = d.Uvarint()
	s.Frees = d.Uvarint()
	s.PagesInUse = int(d.Uvarint())
	s.HighWater = int(d.Uvarint())
	s.SimTime = time.Duration(d.Uvarint())
	return s
}

func encodeWormStats(e *record.Encoder, s storage.WORMStats) {
	e.Uvarint(s.SectorReads)
	e.Uvarint(s.SectorWrites)
	e.Uvarint(s.Appends)
	e.Uvarint(s.SectorsBurned)
	e.Uvarint(s.PayloadBytes)
	e.Uvarint(s.WastedBytes)
	e.Uvarint(s.Mounts)
	encodeDuration(e, int64(s.SimTime))
}

func decodeWormStats(d *record.Decoder) storage.WORMStats {
	var s storage.WORMStats
	s.SectorReads = d.Uvarint()
	s.SectorWrites = d.Uvarint()
	s.Appends = d.Uvarint()
	s.SectorsBurned = d.Uvarint()
	s.PayloadBytes = d.Uvarint()
	s.WastedBytes = d.Uvarint()
	s.Mounts = d.Uvarint()
	s.SimTime = time.Duration(d.Uvarint())
	return s
}

// encodePagedMeta builds the framePagedMeta payload.
func encodePagedMeta(m *PagedMeta) []byte {
	e := record.NewEncoder(nil)
	e.Byte(framePagedMeta)
	e.Uvarint(m.Epoch)
	e.Uvarint(uint64(m.PageSize))
	e.Uvarint(uint64(m.SectorSize))
	e.Uvarint(m.Alloc.Pages)
	e.Uvarint(uint64(len(m.Alloc.Free)))
	for _, p := range m.Alloc.Free {
		e.Uvarint(p)
	}
	encodeMagStats(e, m.MagStats)
	e.Uvarint(m.Burned)
	encodeWormStats(e, m.WormStats)
	e.Uvarint(uint64(len(m.Shards)))
	for _, img := range m.Shards {
		encodeTreeImage(e, img)
	}
	names := make([]string, 0, len(m.Secondaries))
	for name := range m.Secondaries {
		names = append(names, name)
	}
	sort.Strings(names)
	e.Uvarint(uint64(len(names)))
	for _, name := range names {
		e.Blob([]byte(name))
		encodeTreeImage(e, m.Secondaries[name])
	}
	e.Uvarint(uint64(len(m.Pending)))
	for _, p := range m.Pending {
		e.Key(p.Key)
		e.Uvarint(p.TxnID)
	}
	e.Uvarint(uint64(len(m.GroupLSNs)))
	for _, lsn := range m.GroupLSNs {
		e.Uvarint(lsn)
	}
	e.Uvarint(m.SecLSN)
	e.Uvarint(m.DeadBytes)
	return e.Bytes()
}

// decodePagedMeta parses a framePagedMeta payload (past the type byte).
func decodePagedMeta(d *record.Decoder) (*PagedMeta, error) {
	m := &PagedMeta{Secondaries: make(map[string]core.TreeImage)}
	m.Epoch = d.Uvarint()
	m.PageSize = int(d.Uvarint())
	m.SectorSize = int(d.Uvarint())
	m.Alloc.Pages = d.Uvarint()
	nFree := d.Uvarint()
	if nFree > uint64(d.Remaining()) {
		return nil, fmt.Errorf("wal: paged meta: %d free pages", nFree)
	}
	for i := uint64(0); i < nFree && d.Err() == nil; i++ {
		m.Alloc.Free = append(m.Alloc.Free, d.Uvarint())
	}
	m.MagStats = decodeMagStats(d)
	m.Burned = d.Uvarint()
	m.WormStats = decodeWormStats(d)
	nShards := d.Uvarint()
	if nShards > uint64(d.Remaining()) {
		return nil, fmt.Errorf("wal: paged meta: %d shard images", nShards)
	}
	for i := uint64(0); i < nShards && d.Err() == nil; i++ {
		m.Shards = append(m.Shards, decodeTreeImage(d))
	}
	nSec := d.Uvarint()
	if nSec > uint64(d.Remaining()) {
		return nil, fmt.Errorf("wal: paged meta: %d secondary images", nSec)
	}
	for i := uint64(0); i < nSec && d.Err() == nil; i++ {
		name := string(d.Blob())
		m.Secondaries[name] = decodeTreeImage(d)
	}
	nPend := d.Uvarint()
	for i := uint64(0); i < nPend && d.Err() == nil; i++ {
		var p txn.PendingWrite
		p.Key = d.Key().Clone()
		p.TxnID = d.Uvarint()
		m.Pending = append(m.Pending, p)
	}
	nGroup := d.Uvarint()
	if nGroup > uint64(d.Remaining()) {
		return nil, fmt.Errorf("wal: paged meta: %d group LSNs", nGroup)
	}
	for i := uint64(0); i < nGroup && d.Err() == nil; i++ {
		m.GroupLSNs = append(m.GroupLSNs, d.Uvarint())
	}
	m.SecLSN = d.Uvarint()
	m.DeadBytes = d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wal: paged meta: %w", err)
	}
	return m, nil
}
