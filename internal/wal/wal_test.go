package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

func rec(id uint64, t record.Timestamp, keys ...string) txn.CommitRecord {
	r := txn.CommitRecord{TxnID: id, Time: t}
	for _, k := range keys {
		r.Versions = append(r.Versions, record.Version{
			Key: record.StringKey(k), Time: t, TxnID: id, Value: []byte("v-" + k),
		})
	}
	return r
}

// replayAll replays every segment of dir in order, starting after
// afterLSN, and returns the records seen.
func replayAll(t *testing.T, dir string, afterLSN uint64) []txn.CommitRecord {
	t.Helper()
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []txn.CommitRecord
	last := afterLSN
	for _, seg := range segs {
		lastLSN, _, err := ReplayFile(seg.Path, last, func(lsn uint64, r txn.CommitRecord) error {
			out = append(out, r)
			return nil
		})
		if err != nil {
			t.Fatalf("replay %s: %v", seg.Path, err)
		}
		if lastLSN > last {
			last = lastLSN
		}
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	batch1 := []txn.CommitRecord{rec(2, 1, "a", "b"), rec(3, 2, "c")}
	batch2 := []txn.CommitRecord{rec(4, 3, "a")}
	if err := l.AppendBatch(batch1); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch(batch2); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 2 || st.Records != 3 || st.Syncs != 2 {
		t.Errorf("stats = %+v", st)
	}
	if l.LastLSN() != 3 {
		t.Errorf("last LSN = %d, want 3", l.LastLSN())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got := replayAll(t, dir, 0)
	want := append(append([]txn.CommitRecord{}, batch1...), batch2...)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].TxnID != want[i].TxnID || got[i].Time != want[i].Time ||
			len(got[i].Versions) != len(want[i].Versions) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
		for j := range want[i].Versions {
			g, w := got[i].Versions[j], want[i].Versions[j]
			if !g.Key.Equal(w.Key) || g.Time != w.Time || string(g.Value) != string(w.Value) {
				t.Fatalf("record %d version %d = %+v, want %+v", i, j, g, w)
			}
		}
	}

	// afterLSN filtering: skipping the first two records.
	if got := replayAll(t, dir, 2); len(got) != 1 || got[0].TxnID != 4 {
		t.Fatalf("filtered replay = %+v", got)
	}
}

func TestReplayStopsAtTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := l.AppendBatch([]txn.CommitRecord{rec(i+1, record.Timestamp(i), "k")}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, _ := Segments(dir)
	path := segs[0].Path
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the file at every possible byte length; replay must always
	// succeed and yield a prefix of the five records.
	for cut := 0; cut <= len(whole); cut++ {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var seen []uint64
		lastLSN, clean, err := ReplayFile(path, 0, func(lsn uint64, r txn.CommitRecord) error {
			seen = append(seen, lsn)
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: replay error %v", cut, err)
		}
		if wantClean := frameEndsAt(whole, cut); clean != wantClean {
			t.Fatalf("cut=%d: clean=%v, want %v", cut, clean, wantClean)
		}
		if lastLSN != uint64(len(seen)) {
			t.Fatalf("cut=%d: lastLSN=%d with %d records", cut, lastLSN, len(seen))
		}
		for i, lsn := range seen {
			if lsn != uint64(i+1) {
				t.Fatalf("cut=%d: replayed LSN %d at position %d", cut, lsn, i)
			}
		}
		if len(seen) > 5 {
			t.Fatalf("cut=%d: replayed %d records", cut, len(seen))
		}
	}
	// A corrupted byte inside a frame body stops replay at that frame.
	corrupt := append([]byte{}, whole...)
	corrupt[len(corrupt)-1] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	_, clean, err := ReplayFile(path, 0, func(uint64, txn.CommitRecord) error { n++; return nil })
	if err != nil || clean || n != 4 {
		t.Fatalf("corrupt tail: n=%d clean=%v err=%v", n, clean, err)
	}
}

// frameEndsAt reports whether offset cut is a frame boundary of buf.
func frameEndsAt(buf []byte, cut int) bool {
	off := 0
	for off < cut {
		if off+frameHeaderSize > len(buf) {
			return false
		}
		n := int(uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24)
		off += frameHeaderSize + n
	}
	return off == cut
}

func TestRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]txn.CommitRecord{rec(2, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if boundary != 1 {
		t.Fatalf("rotation boundary = %d, want 1", boundary)
	}
	if err := l.AppendBatch([]txn.CommitRecord{rec(3, 2, "b")}); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	if len(segs) != 2 || segs[0].Index != 1 || segs[1].Index != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	// Records span the rotation; replay stitches them back together.
	if got := replayAll(t, dir, 0); len(got) != 2 || got[0].TxnID != 2 || got[1].TxnID != 3 {
		t.Fatalf("replay across rotation = %+v", got)
	}
	// Truncation drops the closed segment, keeps the live one.
	if err := l.RemoveSegmentsBelow(l.CurrentSegment()); err != nil {
		t.Fatal(err)
	}
	segs, _ = Segments(dir)
	if len(segs) != 1 || segs[0].Index != 2 {
		t.Fatalf("segments after truncation = %+v", segs)
	}
	if got := replayAll(t, dir, boundary); len(got) != 1 || got[0].TxnID != 3 {
		t.Fatalf("replay after truncation = %+v", got)
	}
	l.Close()
}

func TestAppendAfterTornWriteFailsFast(t *testing.T) {
	dir := t.TempDir()
	plan := storage.NewTearPlan(40)
	l, err := Open(Options{
		Dir:      dir,
		WrapFile: func(f storage.LogFile) storage.LogFile { return storage.NewTornLogFile(f, plan) },
	}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]txn.CommitRecord{rec(2, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	// The second append crosses the 40-byte budget and tears.
	err = l.AppendBatch([]txn.CommitRecord{rec(3, 2, "b")})
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("torn append error = %v", err)
	}
	// The log is broken: later appends fail without touching the device.
	if err := l.AppendBatch([]txn.CommitRecord{rec(4, 3, "c")}); err == nil {
		t.Fatal("append on broken log should fail")
	}
	if _, err := l.Rotate(); err == nil {
		t.Fatal("rotate on broken log should fail")
	}
	// Recovery sees exactly the intact prefix.
	if got := replayAll(t, dir, 0); len(got) != 1 || got[0].TxnID != 2 {
		t.Fatalf("replay after tear = %+v", got)
	}
	l.Close()
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	vs := func(shard int) []record.Version {
		var out []record.Version
		for i := 0; i < 700; i++ { // > checkpointChunk: forces chunking
			out = append(out, record.Version{
				Key:   record.StringKey(string(rune('a'+shard)) + "key"),
				Time:  record.Timestamp(i + 1),
				Value: []byte{byte(shard), byte(i)},
			})
		}
		return out
	}
	info := CheckpointInfo{Shards: 2, Clock: 700, LSN: 41, Secondaries: []string{"dept"}}
	err := WriteCheckpoint(dir, nil, info, func(shard int) ([]record.Version, error) {
		return vs(shard), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int][]record.Version{}
	gotInfo, found, err := ReadCheckpoint(dir, func(shard int, chunk []record.Version) error {
		got[shard] = append(got[shard], chunk...)
		return nil
	})
	if err != nil || !found {
		t.Fatalf("read: found=%v err=%v", found, err)
	}
	if gotInfo.Shards != 2 || gotInfo.Clock != 700 || gotInfo.LSN != 41 ||
		len(gotInfo.Secondaries) != 1 || gotInfo.Secondaries[0] != "dept" {
		t.Fatalf("info = %+v", gotInfo)
	}
	for shard := 0; shard < 2; shard++ {
		want := vs(shard)
		if len(got[shard]) != len(want) {
			t.Fatalf("shard %d: %d versions, want %d", shard, len(got[shard]), len(want))
		}
		for i := range want {
			g := got[shard][i]
			if !g.Key.Equal(want[i].Key) || g.Time != want[i].Time || string(g.Value) != string(want[i].Value) {
				t.Fatalf("shard %d version %d = %+v, want %+v", shard, i, g, want[i])
			}
		}
	}
	// Header-only read agrees.
	hdr, found, err := ReadCheckpointInfo(dir)
	if err != nil || !found || hdr.LSN != 41 {
		t.Fatalf("info read: %+v found=%v err=%v", hdr, found, err)
	}
}

func TestCheckpointAbsentAndTorn(t *testing.T) {
	dir := t.TempDir()
	if _, found, err := ReadCheckpoint(dir, nil); err != nil || found {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}

	// A torn checkpoint write never installs: the tmp file stays and is
	// ignored by readers.
	plan := storage.NewTearPlan(30)
	err := WriteCheckpoint(dir,
		func(f storage.LogFile) storage.LogFile { return storage.NewTornLogFile(f, plan) },
		CheckpointInfo{Shards: 1, Clock: 3, LSN: 7},
		func(int) ([]record.Version, error) {
			return []record.Version{{Key: record.StringKey("k"), Time: 1, Value: []byte("v")}}, nil
		})
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("torn checkpoint error = %v", err)
	}
	if _, found, err := ReadCheckpoint(dir, nil); err != nil || found {
		t.Fatalf("after torn write: found=%v err=%v", found, err)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointName)); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file should not exist: %v", err)
	}

	// An installed checkpoint that is then corrupted is a hard error.
	err = WriteCheckpoint(dir, nil, CheckpointInfo{Shards: 1, Clock: 3, LSN: 7},
		func(int) ([]record.Version, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, checkpointName)
	buf, _ := os.ReadFile(path)
	if err := os.WriteFile(path, buf[:len(buf)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(dir, nil); err == nil {
		t.Fatal("truncated installed checkpoint should be a hard error")
	}
}

func TestOpenContinuesLSNAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendBatch([]txn.CommitRecord{rec(2, 1, "a"), rec(3, 2, "b")}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// A reopened log starts a fresh segment past the old one and
	// continues the LSN sequence.
	l2, err := Open(Options{Dir: dir}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.AppendBatch([]txn.CommitRecord{rec(4, 3, "c")}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	got := replayAll(t, dir, 0)
	if len(got) != 3 || got[2].TxnID != 4 {
		t.Fatalf("replay = %+v", got)
	}
}
