// Package wal is the durability subsystem of the engine: an append-only,
// CRC-framed, fsync-batched write-ahead log of commit records, plus the
// logical checkpoint format that lets the log be truncated without
// stopping writers.
//
// # Log format
//
// The log is a sequence of numbered segment files (wal-00000001.log,
// wal-00000002.log, ...). Each segment is a run of frames:
//
//	| payload length (uint32 LE) | CRC32-C of payload (uint32 LE) | payload |
//
// A commit payload carries the frame's log sequence number (LSN, global
// across segments), the transaction id, the commit time, and the stamped
// write set in the record package's wire encoding. Because versions are
// immutable once stamped (the non-deletion policy), redo is the whole
// recovery story: there is no undo logging — uncommitted data never
// becomes durable, so there is nothing to roll back.
//
// Replay stops at the first torn frame (short header, short payload, or
// CRC mismatch): everything before it is the committed prefix, everything
// from it on was never acknowledged. A batch append is a single
// write+fsync, so a crash can also leave a fully intact frame whose
// committer was never acknowledged — recovery treats it as committed
// (standard presumed-durable-once-logged semantics); what it can never do
// is surface half a transaction, because a frame is exactly one
// transaction and is guarded by its CRC.
//
// # Group commit
//
// Log.AppendBatch encodes every record of a batch into one buffer,
// issues one Write and one Sync: the fsync cost of durability is
// amortized across every transaction the batch carries. Stats reports
// the ratio.
//
// # Checkpoints
//
// A checkpoint (see checkpoint.go) is a logical, CRC-framed dump of
// every committed version up to a boundary, taken shard by shard under
// short read latches while writers keep committing, stamped with the
// LSN the log was rotated at. Dumps are boundary-exact (versions
// stamped after the boundary clock are filtered out; their log records
// all sit past the rotation LSN), so checkpoint reload plus log-tail
// replay applies every commit exactly once, in global commit-time
// order. Once a checkpoint is durable (written to a temp file, fsynced,
// atomically renamed), segments wholly at or below its LSN are deleted:
// incremental truncation with writers running.
package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
)

// Frame payload types.
const (
	frameCommit           = 1
	frameCheckpointHeader = 2
	frameShardChunk       = 3
	frameCheckpointFooter = 4
	framePagedMeta        = 5
)

const (
	frameHeaderSize = 8
	// maxFrame bounds a single frame payload; anything larger in a
	// length header is corruption, not data.
	maxFrame = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segmentName returns the file name of segment i.
func segmentName(i uint64) string { return fmt.Sprintf("wal-%08d.log", i) }

// Segment locates one numbered log segment on disk.
type Segment struct {
	Index uint64
	Path  string
}

// Segments lists dir's log segments in index order.
func Segments(dir string) ([]Segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []Segment
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		var idx uint64
		if _, err := fmt.Sscanf(name, "wal-%08d.log", &idx); err != nil || idx == 0 {
			continue
		}
		segs = append(segs, Segment{Index: idx, Path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })
	return segs, nil
}

// Options configures a Log.
type Options struct {
	// Dir is the directory holding segments and checkpoints.
	Dir string
	// WrapFile, if set, wraps every file the log opens for writing —
	// the fault-injection seam (storage.TornLogFile) for torn-write
	// crash tests.
	WrapFile func(storage.LogFile) storage.LogFile
}

func (o Options) wrap(f storage.LogFile) storage.LogFile {
	if o.WrapFile == nil {
		return f
	}
	return o.WrapFile(f)
}

// Stats is the log writer's accounting. Records/Syncs is the group
// commit amortization factor; BacklogBytes is the admission-control and
// checkpoint-scheduling gauge — bytes appended since the last
// checkpoint install (MarkCheckpoint), i.e. the log tail a crash right
// now would replay.
type Stats struct {
	Appends uint64 // batches appended
	Records uint64 // commit records appended
	Syncs   uint64 // fsyncs issued for appends
	Bytes   uint64 // bytes durably written to segments
	// BacklogBytes is Bytes minus the value it held when MarkCheckpoint
	// last ran: the un-checkpointed log tail. After a reopen it counts
	// from the reopened log (the replayed tail was just applied, and
	// the recovery path's first checkpoint re-anchors it).
	BacklogBytes uint64
}

// Log is the append side of the write-ahead log. It is safe for
// concurrent use, though the transaction manager only ever appends from
// one batch leader at a time.
type Log struct {
	mu     sync.Mutex //tsb:latch level=4 name=wal
	opts   Options
	f      storage.LogFile
	seg    uint64
	lsn    uint64
	broken error
	// The append accounting lives in obs instruments — the one source
	// of truth; Stats() derives its snapshot from them and
	// RegisterMetrics names them for exposition.
	appends obs.Counter
	records obs.Counter
	syncs   obs.Counter
	bytes   obs.Counter
	fsync   obs.Histogram // append-path fsync latency
	// ckptBytes is bytes.Load() at the last MarkCheckpoint: the anchor
	// Stats derives BacklogBytes from.
	ckptBytes uint64
}

// Open opens a log in opts.Dir for appending, starting a fresh segment
// numbered nextSeg (1 for an empty directory; one past the last existing
// segment after recovery — the torn tail of an old segment is never
// appended to). lastLSN seeds the sequence numbers.
func Open(opts Options, nextSeg, lastLSN uint64) (*Log, error) {
	if nextSeg == 0 {
		nextSeg = 1
	}
	l := &Log{opts: opts, lsn: lastLSN}
	if err := l.openSegment(nextSeg); err != nil {
		return nil, err
	}
	return l, nil
}

// openSegment creates segment i and makes it current. Called under mu
// (or before the log is shared).
func (l *Log) openSegment(i uint64) error {
	f, err := os.OpenFile(filepath.Join(l.opts.Dir, segmentName(i)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", i, err)
	}
	l.f = l.opts.wrap(f)
	l.seg = i
	syncDir(l.opts.Dir)
	return nil
}

// encodeCommit builds the payload of one commit frame.
func encodeCommit(lsn uint64, rec txn.CommitRecord) []byte {
	e := record.NewEncoder(nil)
	e.Byte(frameCommit)
	e.Uvarint(lsn)
	e.Uvarint(rec.TxnID)
	e.Time(rec.Time)
	e.Versions(rec.Versions)
	return e.Bytes()
}

// appendFrame appends one CRC frame around payload — the shared wire
// framing (record.AppendFrame); the network service layer speaks the
// same shape.
func appendFrame(buf, payload []byte) []byte {
	return record.AppendFrame(buf, payload)
}

// AppendBatch appends one frame per commit record and makes them all
// durable with a single write and a single fsync — the group-commit
// amortization. On error the log is broken: the batch (and everything
// after it) must be considered unacknowledged, and recovery decides what
// actually persisted.
func (l *Log) AppendBatch(recs []txn.CommitRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return l.broken
	}
	var buf []byte
	for _, rec := range recs {
		l.lsn++
		buf = appendFrame(buf, encodeCommit(l.lsn, rec))
	}
	n, err := l.f.Write(buf)
	l.bytes.Add(uint64(n))
	if err != nil {
		l.broken = fmt.Errorf("wal: segment %d append: %w", l.seg, err)
		return l.broken
	}
	syncStart := time.Now()
	if err := l.f.Sync(); err != nil {
		l.broken = fmt.Errorf("wal: segment %d sync: %w", l.seg, err)
		return l.broken
	}
	l.fsync.Observe(time.Since(syncStart))
	l.appends.Inc()
	l.records.Add(uint64(len(recs)))
	l.syncs.Inc()
	return nil
}

// Rotate closes the current segment and starts the next one, returning
// the LSN boundary: every record at or below it is in a closed segment.
// The checkpointer calls this under the commit manager's Quiesce, so the
// boundary also means "fully posted to the store".
func (l *Log) Rotate() (lastLSN uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return 0, l.broken
	}
	// Every append already synced, so closing loses nothing.
	if err := l.f.Close(); err != nil {
		l.broken = fmt.Errorf("wal: close segment %d: %w", l.seg, err)
		return 0, l.broken
	}
	if err := l.openSegment(l.seg + 1); err != nil {
		l.broken = err
		return 0, err
	}
	return l.lsn, nil
}

// RemoveSegmentsBelow deletes segments with index < keep: the truncation
// step after a checkpoint is durable.
func (l *Log) RemoveSegmentsBelow(keep uint64) error {
	segs, err := Segments(l.opts.Dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.Index >= keep {
			continue
		}
		if err := os.Remove(s.Path); err != nil {
			return fmt.Errorf("wal: remove %s: %w", s.Path, err)
		}
	}
	syncDir(l.opts.Dir)
	return nil
}

// CurrentSegment returns the index of the segment appends go to.
func (l *Log) CurrentSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// LastLSN returns the sequence number of the last appended record.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lsn
}

// Stats returns a snapshot of the append accounting, derived from the
// log's registered instruments.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := Stats{
		Appends: l.appends.Load(),
		Records: l.records.Load(),
		Syncs:   l.syncs.Load(),
		Bytes:   l.bytes.Load(),
	}
	st.BacklogBytes = st.Bytes - l.ckptBytes
	return st
}

// FsyncHist exposes the append-path fsync latency histogram (the status
// surfaces render its quantiles).
func (l *Log) FsyncHist() *obs.Histogram { return &l.fsync }

// RegisterMetrics names the log's instruments in r; the engine facade
// calls it once at open. The derived gauges take the log mutex at
// scrape time only.
func (l *Log) RegisterMetrics(r *obs.Registry) {
	r.RegisterCounter("tsb_wal_appends_total", "group-commit batches appended", &l.appends)
	r.RegisterCounter("tsb_wal_records_total", "commit records appended", &l.records)
	r.RegisterCounter("tsb_wal_syncs_total", "append-path fsyncs issued", &l.syncs)
	r.RegisterCounter("tsb_wal_bytes_total", "bytes durably written to log segments", &l.bytes)
	r.RegisterHistogram("tsb_wal_fsync_seconds", "append-path fsync latency", &l.fsync)
	r.GaugeFunc("tsb_wal_backlog_bytes", "log bytes appended since the last checkpoint install", func() float64 {
		return float64(l.Stats().BacklogBytes)
	})
	r.GaugeFunc("tsb_wal_records_per_sync", "group-commit amortization: commit records per fsync", func() float64 {
		syncs := l.syncs.Load()
		if syncs == 0 {
			return 0
		}
		return float64(l.records.Load()) / float64(syncs)
	})
}

// MarkCheckpoint anchors the backlog gauge: the checkpointer calls it
// once a checkpoint is durably installed, and Stats reports the bytes
// appended since as BacklogBytes.
func (l *Log) MarkCheckpoint() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ckptBytes = l.bytes.Load()
}

// Close closes the current segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		// Best-effort close of a dead device; the error that broke the
		// log already reached the committers.
		_ = l.f.Close()
		return nil
	}
	l.broken = fmt.Errorf("wal: log closed")
	return l.f.Close()
}

// syncDir fsyncs a directory so renames and creates are durable.
// Best-effort: not every platform supports it, and the simulated crash
// tests do not model directory-entry loss.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

var _ txn.CommitLog = (*Log)(nil)
