// Package obs is the engine's observability substrate: named counters,
// gauges, and lock-free log2 latency histograms behind a Registry, plus
// a lightweight span API over a fixed-size ring-buffer event log for
// tracing background jobs (migration phases, checkpoints, compaction,
// maintenance) and a slow-op log of spans past a threshold.
//
// The package is deliberately primitive — standard library only, no
// global state, no sampling, no exporters. Instruments are plain
// structs a component embeds and updates with single atomic operations;
// a Registry is a view over instruments for exposition (Prometheus text
// format, /debug/vars JSON), not a dependency of the hot path. Every
// recording operation (Counter.Add, Gauge.Set, Histogram.Observe,
// EventLog ring append) is allocation-free and safe from any goroutine;
// none takes an engine latch, so instrumentation is legal at any level
// of the latch hierarchy — tsbvet's latchio analyzer knows calls into
// this package are never device I/O.
//
// Naming follows the Prometheus convention: snake_case metric names
// prefixed tsb_, counters suffixed _total, durations as _seconds
// histograms. See docs/ARCHITECTURE.md ("Observability") for the full
// scheme and what each latency metric includes.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; it must not be copied after first use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to
// use; it must not be copied after first use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v as the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }
