package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one completed span in the event log: a named background
// operation (a migration phase set, a checkpoint, a compaction round, a
// maintenance job) with its wall start time and duration.
type Event struct {
	Seq    uint64        // monotonically increasing per log
	Name   string        // span name, e.g. "checkpoint" or "migrate"
	Detail string        // free-form outcome text, set at End
	Start  time.Time     // wall-clock start
	Dur    time.Duration // span duration
}

// EventLog is a fixed-size ring buffer of completed spans plus a
// second ring of slow ops — spans whose duration met the threshold.
// Recording is a mutex-guarded ring store (no allocation, no engine
// latch); the mutex is private to the log and held for a copy only, so
// recording is legal at any level of the latch hierarchy.
type EventLog struct {
	mu     sync.Mutex
	events ring
	slow   ring
	next   uint64
	thresh atomic.Int64 // slow-op threshold, nanoseconds (0 = disabled)
}

// ring is a fixed-capacity overwrite-oldest event buffer.
type ring struct {
	buf []Event
	n   uint64 // total ever appended
}

func (r *ring) append(e Event) {
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
}

// snapshot returns the retained events oldest-first.
func (r *ring) snapshot() []Event {
	size := uint64(len(r.buf))
	count := r.n
	if count > size {
		count = size
	}
	out := make([]Event, 0, count)
	for i := r.n - count; i < r.n; i++ {
		out = append(out, r.buf[i%size])
	}
	return out
}

// NewEventLog returns a log retaining the last size events, recording
// spans at or above slowThreshold into the slow-op ring (a quarter of
// size, minimum 16). A zero slowThreshold disables the slow-op log.
func NewEventLog(size int, slowThreshold time.Duration) *EventLog {
	if size < 16 {
		size = 16
	}
	slowSize := size / 4
	if slowSize < 16 {
		slowSize = 16
	}
	l := &EventLog{
		events: ring{buf: make([]Event, size)},
		slow:   ring{buf: make([]Event, slowSize)},
	}
	l.thresh.Store(int64(slowThreshold))
	return l
}

// SetSlowThreshold changes the slow-op threshold (0 disables).
func (l *EventLog) SetSlowThreshold(d time.Duration) { l.thresh.Store(int64(d)) }

// SlowThreshold returns the current slow-op threshold.
func (l *EventLog) SlowThreshold() time.Duration { return time.Duration(l.thresh.Load()) }

// Record appends one completed span. Nil-safe: a nil log drops the
// event, so instrumented code never branches on wiring.
func (l *EventLog) Record(name, detail string, start time.Time, dur time.Duration) {
	if l == nil {
		return
	}
	thresh := l.thresh.Load()
	l.mu.Lock()
	e := Event{Seq: l.next, Name: name, Detail: detail, Start: start, Dur: dur}
	l.next++
	l.events.append(e)
	if thresh > 0 && int64(dur) >= thresh {
		l.slow.append(e)
	}
	l.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events.snapshot()
}

// SlowOps returns the retained slow ops, oldest first.
func (l *EventLog) SlowOps() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.slow.snapshot()
}

// Span is an in-flight timed operation. It is a value: starting one
// allocates nothing, and End both logs the event and feeds the
// optional histogram. The zero Span is inert.
type Span struct {
	log   *EventLog
	hist  *Histogram
	name  string
	start time.Time
}

// StartSpan opens a span named name; h (optional, may be nil) also
// receives the duration at End. Safe on a nil log.
func (l *EventLog) StartSpan(name string, h *Histogram) Span {
	return Span{log: l, hist: h, name: name, start: time.Now()}
}

// End completes the span: the duration is recorded in the log (and the
// slow-op ring past the threshold) and observed by the histogram.
// detail is the outcome text shown in the event log. It returns the
// span's duration.
func (s Span) End(detail string) time.Duration {
	if s.name == "" && s.log == nil && s.hist == nil {
		return 0
	}
	dur := time.Since(s.start)
	if s.hist != nil {
		s.hist.Observe(dur)
	}
	s.log.Record(s.name, detail, s.start, dur)
	return dur
}
