package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Label is one name=value dimension on a metric.
type Label struct {
	Key, Value string
}

// metricKind discriminates what a registered metric reads from.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered (name, labels) series.
type metric struct {
	name   string
	labels string // rendered {k="v",...}, or ""
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

func (m *metric) series() string { return m.name + m.labels }

// Registry names instruments for exposition. Components create their
// instruments standalone (the hot path never touches the registry) and
// the owner registers them once at construction; the registry is then
// read by the Prometheus and JSON renderers. Registration is
// idempotent per (name, labels): registering the same series again
// returns the canonical first instrument, so two components cannot
// silently split one series.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	index   map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// register installs m unless its series exists; it returns the
// canonical entry and panics on a kind or name conflict (programmer
// error: a metric name means one thing).
func (r *Registry) register(m *metric) *metric {
	if !validMetricName(m.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.index[m.series()]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", m.series(), m.kind, prev.kind))
		}
		return prev
	}
	for _, prev := range r.metrics {
		if prev.name == m.name && prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", m.name, m.kind, prev.kind))
		}
	}
	r.metrics = append(r.metrics, m)
	r.index[m.series()] = m
	return m
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// Histogram registers (or returns the existing) histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: kindHistogram, hist: &Histogram{}})
	return m.hist
}

// GaugeFunc registers a derived gauge evaluated at scrape time. fn may
// take component locks (a scrape is not the hot path) but must not
// block indefinitely.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: kindGaugeFunc, fn: fn})
}

// RegisterCounter attaches an existing counter instrument to a series
// name. The first registration of a series wins; the canonical
// instrument is returned.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) *Counter {
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: kindCounter, counter: c})
	return m.counter
}

// RegisterGauge attaches an existing gauge instrument to a series name.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) *Gauge {
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: kindGauge, gauge: g})
	return m.gauge
}

// RegisterHistogram attaches an existing histogram instrument to a
// series name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) *Histogram {
	m := r.register(&metric{name: name, labels: renderLabels(labels), help: help, kind: kindHistogram, hist: h})
	return m.hist
}

// snapshot returns the registered metrics sorted by name then labels —
// the stable exposition order. Families (same name) stay contiguous.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].name != out[b].name {
			return out[a].name < out[b].name
		}
		return out[a].labels < out[b].labels
	})
	return out
}

// validMetricName enforces the Prometheus metric-name grammar.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName enforces the Prometheus label-name grammar.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels renders a sorted {k="v",...} block ("" when empty).
// Values are escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(a, b int) bool { return ls[a].Key < ls[b].Key })
	out := "{"
	for i, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			out += ","
		}
		out += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return out + "}"
}

func escapeLabelValue(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
