package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the fixed bucket count: bucket i holds observations
// whose microsecond count has bit length i, i.e. [2^(i-1), 2^i), with
// bucket 0 sub-microsecond. 40 buckets cover ~6 days; anything longer
// clamps into the last bucket.
const histBuckets = 40

// Histogram is a lock-free log2 latency histogram. Observe costs a
// handful of atomic adds and allocates nothing; quantiles report the
// containing bucket's upper bound in microseconds — within 2x of truth,
// which is what an operator steering by a p99 needs. The zero value is
// ready to use; it must not be copied after first use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // total observed nanoseconds
	max     atomic.Uint64 // largest single observation, microseconds
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d))
	for {
		old := h.max.Load()
		if us <= old || h.max.CompareAndSwap(old, us) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// MaxMicros returns the largest single observation in microseconds.
func (h *Histogram) MaxMicros() uint64 { return h.max.Load() }

// Percentile returns the upper bound, in microseconds, of the bucket
// containing the p-th observation (0 when nothing was observed). The
// bound is exact to the bucketing: the true value lies within a factor
// of two below it.
func (h *Histogram) Percentile(p float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(p * float64(total))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketBoundMicros(i)
		}
	}
	return bucketBoundMicros(histBuckets - 1)
}

// bucketBoundMicros is bucket i's inclusive upper bound in microseconds.
func bucketBoundMicros(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1<<uint(i) - 1
}

// Snapshot copies the per-bucket counts for exposition. Concurrent
// observers keep running; the copy is per-bucket atomic, not a global
// consistent cut — fine for monitoring, where the scrape itself races
// the workload anyway.
func (h *Histogram) Snapshot() [histBuckets]uint64 {
	var out [histBuckets]uint64
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}
