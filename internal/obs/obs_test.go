package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramQuantileBounds checks the log2 bucketing contract: for a
// known set of observations, every reported percentile is an upper
// bound on the true value and within a factor of two of it.
func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 1000 observations spread over four decades of microseconds.
	var trueVals []uint64
	for i := 0; i < 1000; i++ {
		us := uint64(1 + i*i/10) // up to ~100ms
		trueVals = append(trueVals, us)
		h.Observe(time.Duration(us) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	for _, p := range []float64{0.50, 0.90, 0.99, 1.0} {
		got := h.Percentile(p)
		rank := int(p * 1000)
		if rank == 0 {
			rank = 1
		}
		truth := trueVals[rank-1]
		if got < truth {
			t.Errorf("p%.0f = %dus below true value %dus", p*100, got, truth)
		}
		if got > 0 && truth > 0 && float64(got) >= 2*float64(truth)+1 {
			t.Errorf("p%.0f = %dus more than 2x true value %dus", p*100, got, truth)
		}
	}
	if max := h.MaxMicros(); max != trueVals[len(trueVals)-1] {
		t.Errorf("max = %dus, want %dus", max, trueVals[len(trueVals)-1])
	}
	wantSum := time.Duration(0)
	for _, us := range trueVals {
		wantSum += time.Duration(us) * time.Microsecond
	}
	if h.Sum() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramEmptyAndClamp(t *testing.T) {
	var h Histogram
	if got := h.Percentile(0.99); got != 0 {
		t.Errorf("empty p99 = %d, want 0", got)
	}
	h.Observe(-time.Second) // clamps to zero
	if got := h.Percentile(1.0); got != 0 {
		t.Errorf("negative observation p100 = %d, want 0", got)
	}
	h.Observe(365 * 24 * time.Hour) // clamps into the last bucket
	if got := h.Percentile(1.0); got != bucketBoundMicros(histBuckets-1) {
		t.Errorf("huge observation p100 = %d, want last bucket bound", got)
	}
}

// TestRegistryConcurrentWriters hammers one counter, one gauge, and one
// histogram from many goroutines while a scraper renders concurrently;
// run under -race this is the data-race proof, and the final counts
// must be exact (atomic, not lossy).
func TestRegistryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency")
	const writers, perWriter = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if _, err := ParseExposition(buf.Bytes()); err != nil {
				t.Errorf("mid-write exposition unparseable: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Load(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Load(); got != writers*perWriter {
		t.Errorf("gauge = %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

// TestRegistryIdempotent checks that re-registering a series returns
// the canonical first instrument.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "a", Label{"shard", "1"})
	b := r.Counter("dup_total", "b", Label{"shard", "1"})
	if a != b {
		t.Fatal("same series registered twice returned distinct instruments")
	}
	other := r.Counter("dup_total", "c", Label{"shard", "2"})
	if other == a {
		t.Fatal("distinct label sets share an instrument")
	}
	var h Histogram
	if got := r.RegisterHistogram("attach_seconds", "x", &h); got != &h {
		t.Fatal("first RegisterHistogram did not return the attached instrument")
	}
	if got := r.RegisterHistogram("attach_seconds", "x", &Histogram{}); got != &h {
		t.Fatal("second RegisterHistogram did not return the canonical instrument")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("conflict_total", "x")
}

// TestEventLogWraparound fills the ring far past capacity and checks
// the retained window is exactly the newest events, oldest first, with
// contiguous sequence numbers.
func TestEventLogWraparound(t *testing.T) {
	l := NewEventLog(32, 0)
	start := time.Now()
	for i := 0; i < 100; i++ {
		l.Record("job", fmt.Sprintf("n=%d", i), start, time.Duration(i))
	}
	events := l.Events()
	if len(events) != 32 {
		t.Fatalf("retained %d events, want 32", len(events))
	}
	for i, e := range events {
		wantSeq := uint64(100 - 32 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d: seq %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Detail != fmt.Sprintf("n=%d", wantSeq) {
			t.Fatalf("event %d: detail %q does not match seq %d", i, e.Detail, wantSeq)
		}
	}
}

func TestEventLogSlowOps(t *testing.T) {
	l := NewEventLog(64, 10*time.Millisecond)
	start := time.Now()
	l.Record("fast", "", start, time.Millisecond)
	l.Record("slow", "round 1", start, 50*time.Millisecond)
	l.Record("fast", "", start, 2*time.Millisecond)
	l.Record("threshold", "", start, 10*time.Millisecond) // >= threshold counts
	slow := l.SlowOps()
	if len(slow) != 2 || slow[0].Name != "slow" || slow[1].Name != "threshold" {
		t.Fatalf("slow ops = %+v, want [slow threshold]", slow)
	}
	if len(l.Events()) != 4 {
		t.Fatalf("event log retained %d, want 4", len(l.Events()))
	}
	l.SetSlowThreshold(0)
	l.Record("slow2", "", start, time.Hour)
	if len(l.SlowOps()) != 2 {
		t.Fatal("disabled threshold still recorded a slow op")
	}
}

func TestSpan(t *testing.T) {
	l := NewEventLog(16, time.Nanosecond)
	var h Histogram
	sp := l.StartSpan("checkpoint", &h)
	time.Sleep(time.Millisecond)
	dur := sp.End("flushed 3 pages")
	if dur < time.Millisecond {
		t.Fatalf("span duration %v under the slept millisecond", dur)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	events := l.Events()
	if len(events) != 1 || events[0].Name != "checkpoint" || events[0].Detail != "flushed 3 pages" {
		t.Fatalf("events = %+v", events)
	}
	if len(l.SlowOps()) != 1 {
		t.Fatal("span past threshold missing from slow-op log")
	}
	// Nil log: span still feeds the histogram and does not panic.
	var nilLog *EventLog
	sp2 := nilLog.StartSpan("x", &h)
	sp2.End("")
	if h.Count() != 2 {
		t.Fatal("nil-log span dropped the histogram observation")
	}
	// Zero span is inert.
	var zero Span
	if zero.End("") != 0 {
		t.Fatal("zero span reported a duration")
	}
}

// TestPrometheusExpositionGolden renders a fixed registry and compares
// against the exact expected exposition, then runs the scraper-grade
// parser over it.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tsb_commits_total", "committed transactions")
	c.Add(42)
	g := r.Gauge("tsb_queue_depth", "migrator queue depth", Label{"shard", "0"})
	g.Set(7)
	r.GaugeFunc("tsb_hit_ratio", "buffer hit ratio", func() float64 { return 0.75 })
	h := r.Histogram("tsb_commit_latency_seconds", "commit latency", Label{"mode", "durable"})
	h.Observe(3 * time.Microsecond)   // bucket 2, le 3e-06
	h.Observe(100 * time.Microsecond) // bucket 7, le 0.000127
	h.Observe(100 * time.Microsecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP tsb_commit_latency_seconds commit latency`,
		`# TYPE tsb_commit_latency_seconds histogram`,
		`tsb_commit_latency_seconds_bucket{mode="durable",le="3e-06"} 1`,
		`tsb_commit_latency_seconds_bucket{mode="durable",le="0.000127"} 3`,
		`tsb_commit_latency_seconds_bucket{mode="durable",le="+Inf"} 3`,
		`tsb_commit_latency_seconds_sum{mode="durable"} 0.000203`,
		`tsb_commit_latency_seconds_count{mode="durable"} 3`,
		`# HELP tsb_commits_total committed transactions`,
		`# TYPE tsb_commits_total counter`,
		`tsb_commits_total 42`,
		`# HELP tsb_hit_ratio buffer hit ratio`,
		`# TYPE tsb_hit_ratio gauge`,
		`tsb_hit_ratio 0.75`,
		`# HELP tsb_queue_depth migrator queue depth`,
		`# TYPE tsb_queue_depth gauge`,
		`tsb_queue_depth{shard="0"} 7`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}

	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("scraper parse failed: %v", err)
	}
	byKey := make(map[string]float64)
	for _, s := range samples {
		byKey[s.Series] = s.Value
	}
	if byKey["tsb_commits_total"] != 42 {
		t.Errorf("parsed commits = %v", byKey["tsb_commits_total"])
	}
	if byKey[`tsb_commit_latency_seconds_bucket{mode="durable",le="+Inf"}`] != 3 {
		t.Errorf("parsed +Inf bucket = %v", byKey[`tsb_commit_latency_seconds_bucket{mode="durable",le="+Inf"}`])
	}
	if missing := RequireSeries(samples, []string{"tsb_commits_total", "tsb_commit_latency_seconds"}); len(missing) != 0 {
		t.Errorf("required series missing: %v", missing)
	}
	if missing := RequireSeries(samples, []string{"tsb_absent_total"}); len(missing) != 1 {
		t.Errorf("absent series not reported: %v", missing)
	}
}

func TestParseExpositionRejects(t *testing.T) {
	bad := []string{
		"metric value\n",                     // non-numeric value
		"1bad_name 3\n",                      // invalid metric name
		`m{l="x} 1` + "\n",                   // unterminated label value
		`m{2l="x"} 1` + "\n",                 // invalid label name
		`m{l=x} 1` + "\n",                    // unquoted label value
		`m{l="a\q"} 1` + "\n",                // bad escape
		"# TYPE m counter\n# TYPE m gauge\n", // duplicate TYPE
		"# TYPE m frobnitz\n",                // unknown type
		"# TYPE m histogram\nm 1\n",          // bare histogram sample
		"m 1 notatimestamp\n",                // bad timestamp
	}
	for _, in := range bad {
		if _, err := ParseExposition([]byte(in)); err == nil {
			t.Errorf("ParseExposition accepted %q", in)
		}
	}
	good := "# scraped by tests\nm{a=\"b\\\"c\",d=\"e\"} 1.5 1699999999\nnan_metric NaN\ninf_metric +Inf\n"
	if _, err := ParseExposition([]byte(good)); err != nil {
		t.Errorf("ParseExposition rejected valid input: %v", err)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(5)
	r.Histogram("b_seconds", "").Observe(10 * time.Microsecond)
	r.GaugeFunc("c_ratio", "", func() float64 { return math.NaN() })
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if out["a_total"] != float64(5) {
		t.Errorf("a_total = %v", out["a_total"])
	}
	hist, ok := out["b_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("b_seconds = %v", out["b_seconds"])
	}
	if out["c_ratio"] != nil {
		t.Errorf("NaN gauge func = %v, want null", out["c_ratio"])
	}
}
