package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE pair per
// family, then the samples. Counters and gauges render their value;
// histograms render cumulative _bucket{le="..."} series with bounds in
// seconds, plus _sum (seconds) and _count — the native shape for
// scrape-side quantile math.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var family string
	for _, m := range r.snapshot() {
		if m.name != family {
			family = m.name
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(m.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, m.labels, m.counter.Load())
		case kindGauge:
			fmt.Fprintf(bw, "%s%s %d\n", m.name, m.labels, m.gauge.Load())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, m.labels, formatFloat(m.fn()))
		case kindHistogram:
			writePromHistogram(bw, m)
		}
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, m *metric) {
	counts := m.hist.Snapshot()
	var cum uint64
	for i, c := range counts {
		cum += c
		if c == 0 {
			// Sparse rendering: only buckets with observations (plus
			// +Inf) emit a line. Cumulative counts stay exact because
			// an empty bucket adds nothing.
			continue
		}
		le := formatFloat(float64(bucketBoundMicros(i)) / 1e6)
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", le), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.name, withLabel(m.labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", m.name, m.labels, formatFloat(m.hist.Sum().Seconds()))
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, m.labels, cum)
}

// withLabel splices one extra label into a rendered label block.
func withLabel(labels, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteJSON renders the registry as a /debug/vars-style JSON object:
// one key per series, counters and gauges as numbers, histograms as
// {count, p50_us, p99_us, max_us, sum_seconds} objects. Keys are the
// exposition series names, so the two views line up.
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n")
	first := true
	for _, m := range r.snapshot() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, "  %s: ", strconv.Quote(m.series()))
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(bw, "%d", m.counter.Load())
		case kindGauge:
			fmt.Fprintf(bw, "%d", m.gauge.Load())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "%s", jsonFloat(m.fn()))
		case kindHistogram:
			h := m.hist
			fmt.Fprintf(bw, `{"count": %d, "p50_us": %d, "p99_us": %d, "max_us": %d, "sum_seconds": %s}`,
				h.Count(), h.Percentile(0.50), h.Percentile(0.99), h.MaxMicros(), jsonFloat(h.Sum().Seconds()))
		}
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}

// jsonFloat renders a float as valid JSON (NaN/Inf become null).
func jsonFloat(v float64) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if strings.ContainsAny(s, "NI") { // NaN, +Inf, -Inf
		return "null"
	}
	return s
}

// Sample is one parsed exposition sample: a series (name plus its
// sorted label block) and its value.
type Sample struct {
	Name   string // metric name alone
	Series string // name{labels} exactly as exposed
	Value  float64
}

// ParseExposition is a scraper-grade parser for the Prometheus text
// format: it validates comment and sample grammar line by line — metric
// and label name character sets, label-value escaping, float values —
// and that every sample of a family with a # TYPE comment appears after
// it. It returns the samples in exposition order. Tests and the CI
// scrape smoke use it to reject output a real scraper would reject.
func ParseExposition(data []byte) ([]Sample, error) {
	var samples []Sample
	typed := make(map[string]string)
	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := parseComment(line, typed); err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if t, ok := typed[familyOf(s.Name)]; ok && t == "histogram" {
			// Histogram samples must be the _bucket/_sum/_count forms.
			switch {
			case strings.HasSuffix(s.Name, "_bucket"),
				strings.HasSuffix(s.Name, "_sum"),
				strings.HasSuffix(s.Name, "_count"):
			default:
				return nil, fmt.Errorf("line %d: bare sample %s of histogram family", ln+1, s.Name)
			}
		}
		samples = append(samples, s)
	}
	return samples, nil
}

// familyOf strips the histogram sample suffixes back to the family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

func parseComment(line string, typed map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 || fields[0] != "#" {
		return nil // a bare "#" (or "#text") is free comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		if len(fields) != 4 {
			return fmt.Errorf("TYPE without a type: %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q", fields[3])
		}
		if _, dup := typed[fields[2]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", fields[2])
		}
		typed[fields[2]] = fields[3]
	default:
		// Other comments are permitted free text.
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return Sample{}, fmt.Errorf("malformed sample %q", line)
	}
	name := line[:i]
	if !validMetricName(name) {
		return Sample{}, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	labels := ""
	if rest[0] == '{' {
		end, err := scanLabelBlock(rest)
		if err != nil {
			return Sample{}, fmt.Errorf("%s: %w", name, err)
		}
		labels = rest[:end]
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// A sample may carry a trailing timestamp; value is the first field.
	valueField := rest
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		valueField = rest[:j]
		ts := strings.TrimSpace(rest[j+1:])
		if ts != "" {
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return Sample{}, fmt.Errorf("%s: bad timestamp %q", name, ts)
			}
		}
	}
	v, err := parseValue(valueField)
	if err != nil {
		return Sample{}, fmt.Errorf("%s: %w", name, err)
	}
	return Sample{Name: name, Series: name + labels, Value: v}, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return strconv.ParseFloat(strings.TrimPrefix(s, "+"), 64)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// scanLabelBlock validates a {k="v",...} block starting at s[0]=='{'
// and returns the index just past the closing brace.
func scanLabelBlock(s string) (int, error) {
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) || !validLabelName(s[start:i]) {
			return 0, fmt.Errorf("bad label name in %q", s)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					break
				}
				switch s[i] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("bad escape \\%c in %q", s[i], s)
				}
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing '"'
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

// RequireSeries checks that every name in want has at least one sample
// (matching on the bare metric name or, for histograms, its family).
// It returns the missing names sorted — empty means all present.
func RequireSeries(samples []Sample, want []string) []string {
	have := make(map[string]bool, len(samples))
	for _, s := range samples {
		have[familyOf(s.Name)] = true
		have[s.Name] = true
	}
	var missing []string
	for _, w := range want {
		if !have[w] {
			missing = append(missing, w)
		}
	}
	sort.Strings(missing)
	return missing
}
