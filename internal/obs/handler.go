package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the live observability surface over HTTP:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/vars     the same registry as a JSON object
//	/debug/events   the event log, oldest first, as text
//	/debug/slow     the slow-op log, oldest first, as text
//	/debug/pprof/*  the standard runtime profiles
//
// Either argument may be nil; the corresponding endpoints then serve
// empty output. The handler takes no engine latch: scrapes read atomic
// instruments and ring snapshots only.
func Handler(r *Registry, l *EventLog) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r != nil {
			_ = r.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if r != nil {
			_ = r.WriteJSON(w)
		} else {
			fmt.Fprintln(w, "{}")
		}
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		writeEvents(w, l.Events())
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
		writeEvents(w, l.SlowOps())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeEvents(w http.ResponseWriter, events []Event) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, e := range events {
		fmt.Fprintf(w, "%d %s %s %v %s\n",
			e.Seq, e.Start.Format("2006-01-02T15:04:05.000"), e.Name, e.Dur, e.Detail)
	}
}
