package main

import (
	"strings"
	"testing"
)

func TestRunAllFigures(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for i := 1; i <= 9; i++ {
		want := "===== Figure " + string(rune('0'+i))
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Spot-check the substance of a few figures.
	for _, want := range []string{
		"balance=100", // figure 1: stepwise constant
		"90 Alice",    // figures 3/4: the paper's insert
		"migrated 2 versions, redundant copies 0", // figure 6, T=last update
		"migrated 3 versions, redundant copies 1", // figure 6, T=now
		"forced time splits",                      // figure 9 resolution
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 6); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Figure 6") {
		t.Error("figure 6 missing")
	}
	if strings.Contains(out, "Figure 3") {
		t.Error("unrequested figure present")
	}
}
