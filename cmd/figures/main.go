// Command figures replays the structural examples of the paper's Figures
// 1-9 and prints the resulting nodes, so each drawing in Lomet & Salzberg
// (SIGMOD 1989) can be compared with this implementation's behaviour.
//
// Usage:
//
//	figures [-fig N]    (default: all figures)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/wobt"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to replay (0 = all)")
	flag.Parse()
	if err := run(os.Stdout, *fig); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

// run replays figure fig (0 = all) to w.
func run(w io.Writer, fig int) error {
	type replay struct {
		n int
		f func(io.Writer) error
	}
	replays := []replay{
		{1, figure1}, {2, figure2}, {3, figure3}, {4, figure4},
		{5, figure5}, {6, figure6}, {7, figure7}, {8, figure8}, {9, figure9},
	}
	for _, r := range replays {
		if fig != 0 && fig != r.n {
			continue
		}
		if err := r.f(w); err != nil {
			return fmt.Errorf("figure %d: %w", r.n, err)
		}
	}
	return nil
}

func header(w io.Writer, n int, title string) {
	fmt.Fprintf(w, "\n===== Figure %d: %s =====\n", n, title)
}

func newWOBT(sectorSize, nodeSectors int) (*wobt.Tree, *storage.WORMDisk, error) {
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: sectorSize})
	t, err := wobt.New(worm, wobt.Config{NodeSectors: nodeSectors})
	return t, worm, err
}

func newTSB(p core.Policy, leafCap int) (*core.Tree, error) {
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
	return core.New(mag, worm, core.Config{
		Policy: p, MaxKeySize: 4, MaxValueSize: 8,
		LeafCapacity: leafCap, IndexCapacity: 560,
	})
}

func ins(t interface {
	Insert(record.Version) error
}, key string, ts uint64, val string) error {
	return t.Insert(record.Version{
		Key: record.StringKey(key), Time: record.Timestamp(ts), Value: []byte(val),
	})
}

// figure1 shows stepwise constant data: an account balance holds between
// transactions.
func figure1(w io.Writer) error {
	header(w, 1, "stepwise constant data (account balance between transactions)")
	tree, err := newTSB(core.PolicyLastUpdate, 4096)
	if err != nil {
		return err
	}
	for _, step := range []struct {
		ts  uint64
		bal string
	}{{2, "50"}, {5, "100"}, {9, "70"}} {
		if err := ins(tree, "acct", step.ts, step.bal); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "balance of 'acct' read at each time 1..10:")
	for ts := uint64(1); ts <= 10; ts++ {
		v, ok, err := tree.GetAsOf(record.StringKey("acct"), record.Timestamp(ts))
		if err != nil {
			return err
		}
		if !ok {
			fmt.Fprintf(w, "  t=%-2d  (no account yet)\n", ts)
			continue
		}
		fmt.Fprintf(w, "  t=%-2d  balance=%s (set at t=%s)\n", ts, v.Value, v.Time)
	}
	return nil
}

// figure2 shows a WOBT index node: entries in insertion order, the same
// key occurring several times, the last occurrence the most recent.
func figure2(w io.Writer) error {
	header(w, 2, "WOBT index node: entries in insertion order, keys repeat")
	tree, _, err := newWOBT(128, 4)
	if err != nil {
		return err
	}
	// Drive enough inserts/updates that the root index node accumulates
	// repeated separator keys.
	ts := uint64(0)
	for i := 0; i < 6; i++ {
		for _, k := range []string{"50", "100"} {
			ts++
			if err := ins(tree, k, ts, fmt.Sprintf("v%d", ts)); err != nil {
				return err
			}
		}
	}
	dump, err := tree.DumpNode(tree.Root())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "root index node (insertion order):")
	fmt.Fprintln(w, " ", dump)
	fmt.Fprintln(w, "note: the same separator key occurs several times; a search takes the")
	fmt.Fprintln(w, "last-listed entry with the largest key not exceeding the search key.")
	return nil
}

// figure3 shows a WOBT data-node split by key value and current time.
func figure3(w io.Writer) error {
	header(w, 3, "WOBT split by key value and current time")
	tree, _, err := newWOBT(256, 4)
	if err != nil {
		return err
	}
	for _, r := range []struct {
		k  string
		ts uint64
		v  string
	}{{"50", 1, "Joe"}, {"60", 2, "Pete"}, {"70", 3, "Mary"}, {"70", 4, "Sue"}} {
		if err := ins(tree, r.k, r.ts, r.v); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "before: one full leaf [50 Joe | 60 Pete | 70 Mary | 70 Sue]")
	fmt.Fprintln(w, "now insert 90 Alice ...")
	if err := ins(tree, "90", 5, "Alice"); err != nil {
		return err
	}
	dump, err := tree.Dump()
	if err != nil {
		return err
	}
	fmt.Fprint(w, dump)
	fmt.Fprintln(w, "the old node remains in the database (a DAG); only the most recent")
	fmt.Fprintln(w, "versions were copied into the two new nodes.")
	return nil
}

// figure4 shows a WOBT pure time split.
func figure4(w io.Writer) error {
	header(w, 4, "WOBT pure time split (not enough current records for two nodes)")
	tree, _, err := newWOBT(256, 4)
	if err != nil {
		return err
	}
	for _, r := range []struct {
		k  string
		ts uint64
		v  string
	}{{"60", 1, "Joe"}, {"60", 2, "Pete"}, {"60", 4, "Mary"}, {"90", 5, "Sue"}} {
		if err := ins(tree, r.k, r.ts, r.v); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "before: one full leaf [60 Joe | 60 Pete | 60 Mary | 90 Sue]")
	fmt.Fprintln(w, "now insert 90 Alice ...")
	if err := ins(tree, "90", 6, "Alice"); err != nil {
		return err
	}
	dump, err := tree.Dump()
	if err != nil {
		return err
	}
	fmt.Fprint(w, dump)
	st := tree.Stats()
	fmt.Fprintf(w, "splits: %d by time only, %d by key+time\n", st.TimeSplits, st.KeySplits)
	return nil
}

// figure5 shows a TSB pure key split of an insert-only node.
func figure5(w io.Writer) error {
	header(w, 5, "TSB-tree data node split entirely by key (insert-only node)")
	tree, err := newTSB(core.PolicyWOBTLike, 80)
	if err != nil {
		return err
	}
	seq := []struct {
		k  string
		ts uint64
		v  string
	}{{"50", 2, "Joe"}, {"90", 5, "Pete"}, {"97", 7, "Alice"}, {"93", 8, "Sue"}, {"60", 9, "Ron"}, {"80", 10, "Joan"}}
	for _, r := range seq {
		if err := ins(tree, r.k, r.ts, r.v); err != nil {
			return err
		}
	}
	dump, err := tree.Dump()
	if err != nil {
		return err
	}
	fmt.Fprint(w, dump)
	fmt.Fprintln(w, "no node migrated; the new index entries carry the original timestamp")
	fmt.Fprintln(w, "(start time 0), copied from the previous index entry.")
	return nil
}

// figure6 shows the TSB time split with a chosen split time: T = last
// update (no redundancy) vs T = now (the record alive at T is duplicated).
func figure6(w io.Writer) error {
	header(w, 6, "TSB-tree time split: choice of split time")
	for _, choice := range []core.SplitTimeChoice{core.SplitAtLastUpdate, core.SplitAtNow} {
		tree, err := newTSB(core.Policy{
			KeySplitFraction: 0.5, SplitTime: choice, IndexKeySplitFraction: 0.5,
		}, 60)
		if err != nil {
			return err
		}
		for _, r := range []struct {
			k  string
			ts uint64
			v  string
		}{{"60", 1, "Joe"}, {"60", 2, "Pete"}, {"60", 4, "Mary"}, {"90", 6, "Alice"}} {
			if err := ins(tree, r.k, r.ts, r.v); err != nil {
				return err
			}
		}
		st := tree.Stats()
		fmt.Fprintf(w, "\nsplit time choice = %v: migrated %d versions, redundant copies %d\n",
			choice, st.VersionsMigrated, st.RedundantVersions)
		dump, err := tree.Dump()
		if err != nil {
			return err
		}
		fmt.Fprint(w, dump)
	}
	fmt.Fprintln(w, "with T = last update (4), Mary is only in the current node;")
	fmt.Fprintln(w, "with T = now, Mary persists across T and is in both nodes.")
	return nil
}

func drive(tree *core.Tree, nKeys, updateEvery, maxOps int, stop func(core.Stats) bool) error {
	ts := tree.Now()
	for op := 0; op < maxOps; op++ {
		ts++
		key := fmt.Sprintf("k%03d", op%nKeys)
		if updateEvery > 0 && op%updateEvery == 0 {
			key = fmt.Sprintf("k%03d", (op*13)%nKeys)
		}
		if err := ins(tree, key, uint64(ts), fmt.Sprintf("v%d", ts)); err != nil {
			return err
		}
		if stop(tree.Stats()) {
			return nil
		}
	}
	return nil
}

// figure7 drives the tree until an index keyspace split duplicates a
// historical entry (rule 4) and reports it.
func figure7(w io.Writer) error {
	header(w, 7, "index keyspace split duplicating a historical reference (rule 4)")
	tree, err := newTSB(core.Policy{
		KeySplitFraction: 0.5, SplitTime: core.SplitAtNow, IndexKeySplitFraction: 0.0,
	}, 80)
	if err != nil {
		return err
	}
	if err := drive(tree, 32, 2, 8000, func(s core.Stats) bool {
		return s.IndexKeySplits > 0 && s.RedundantIndexEntries > 0
	}); err != nil {
		return err
	}
	st := tree.Stats()
	fmt.Fprintf(w, "after %d inserts: %d index keyspace splits, %d duplicated historical\n",
		st.Inserts, st.IndexKeySplits, st.RedundantIndexEntries)
	fmt.Fprintln(w, "references (entries whose key range strictly contains the split value;")
	fmt.Fprintln(w, "the duplicate is needed, like locating Pete in the paper's example).")
	fmt.Fprintln(w, "Only historical nodes acquire more than one parent: the TSB-tree is a DAG.")
	return nil
}

// figure8 shows a local index time split: one index node migrates.
func figure8(w io.Writer) error {
	header(w, 8, "local index node time split (only the index node migrates)")
	tree, err := newTSB(core.Policy{
		KeySplitFraction: 0.5, SplitTime: core.SplitAtNow, IndexKeySplitFraction: 1.0,
	}, 80)
	if err != nil {
		return err
	}
	if err := drive(tree, 12, 1, 6000, func(s core.Stats) bool {
		return s.IndexTimeSplits > 0
	}); err != nil {
		return err
	}
	st := tree.Stats()
	fmt.Fprintf(w, "after %d inserts: %d local index time splits, %d historical index nodes\n",
		st.Inserts, st.IndexTimeSplits, st.HistoricalNodes)
	fmt.Fprintln(w, "(the migrated index node references only the historical database, so no")
	fmt.Fprintln(w, "lower node had to be touched: the split is entirely local).")
	return nil
}

// figure9 shows the pathology of a current node blocking an index time
// split, its marking, and the forced resolution.
func figure9(w io.Writer) error {
	header(w, 9, "index node that cannot locally time split; blocker marked")
	tree, err := newTSB(core.Policy{
		KeySplitFraction: 0.5, SplitTime: core.SplitAtNow, IndexKeySplitFraction: 1.0,
	}, 80)
	if err != nil {
		return err
	}
	for i := 0; i < 6; i++ {
		if err := ins(tree, fmt.Sprintf("a%02d", i), uint64(i+1), "x"); err != nil {
			return err
		}
	}
	ts := uint64(100)
	for op := 0; tree.Stats().MarkedLeaves == 0 && op < 6000; op++ {
		ts++
		if err := ins(tree, fmt.Sprintf("z%02d", op%8), ts, fmt.Sprintf("v%d", ts)); err != nil {
			return err
		}
	}
	st := tree.Stats()
	fmt.Fprintf(w, "marked leaves: %d (a current data node created at the index node's own\n", st.MarkedLeaves)
	fmt.Fprintln(w, "start time blocked the time split; the index node keyspace split instead")
	fmt.Fprintln(w, "and the blocker was marked to be time split at the next opportunity).")
	for i := 0; i < 6 && tree.Stats().ForcedTimeSplits == 0; i++ {
		ts++
		if err := ins(tree, fmt.Sprintf("a%02d", i), ts, "touch"); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "after touching the blocked region: %d forced time splits, %d still marked\n",
		tree.Stats().ForcedTimeSplits, tree.MarkedLeafCount())
	return nil
}
