// Command tsbserve serves a TSB-tree database over TCP: the network
// face of the engine, speaking the pipelined binary protocol of
// internal/server/wire. It opens (or recovers) the database at -dir,
// listens on -addr, and drains cleanly on SIGTERM/SIGINT: in-flight
// request windows finish and are acknowledged, cursors close, and the
// database closes last — every acknowledged commit is on disk before
// the process exits.
//
// Usage:
//
//	tsbserve -dir DATA [-addr HOST:PORT] [-shards N] [-paged]
//	         [-migration] [-checkpoint-bytes N]
//	         [-metrics-addr HOST:PORT]
//	         [-window N] [-max-frame BYTES]
//	         [-idle-timeout D] [-write-timeout D] [-lease D]
//	         [-shed-queue N] [-shed-wal-bytes N] [-drain-timeout D]
//
//	tsbserve -status [-watch D] -addr HOST:PORT
//
// -status dials a running server and prints its stats surface
// (connections, in-flight requests, shed count, open cursors, and op
// latency percentiles overall and per op class) instead of serving;
// -watch re-samples every interval and adds throughput deltas.
//
// Besides point ops and range cursors, the protocol serves composed
// temporal queries (internal/query): OpOpenQuery ships an operator
// tree — filter, project, merge join, secondary-index join, group-by,
// diff, history — compiled server-side over the session's snapshot and
// namespace, and OpQueryFetch streams the result rows in batches. The
// per-op latency rows open_query and query_fetch track them in
// -status.
//
// -metrics-addr starts an HTTP sidecar on the serving process exposing
// /metrics (Prometheus text), /debug/vars (JSON), /debug/events and
// /debug/slow (background-job trace rings), and /debug/pprof/*. The
// sidecar reads atomic instruments only — scrapes take no engine latch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/server/wire"
)

func main() {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], os.Stdout, sigCh); err != nil {
		fmt.Fprintln(os.Stderr, "tsbserve:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing: args are the command line,
// stdout receives the human output, and sigCh delivers the shutdown
// signal — tests inject a synthetic SIGTERM through it.
func run(args []string, stdout io.Writer, sigCh <-chan os.Signal) error {
	fs := flag.NewFlagSet("tsbserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:4611", "listen address (or dial address with -status)")
	dir := fs.String("dir", "", "database directory (created or recovered; required to serve)")
	shards := fs.Int("shards", 4, "shard count for a newly created database")
	paged := fs.Bool("paged", false, "paged durable mode (disk page/burn devices)")
	migration := fs.Bool("migration", false, "background time-split migration")
	ckptBytes := fs.Int64("checkpoint-bytes", 0, "background checkpoint threshold (0 = engine default, <0 = off)")
	window := fs.Int("window", 64, "per-connection in-flight request window")
	maxFrame := fs.Int("max-frame", 0, "max frame payload bytes (0 = protocol default)")
	idleTimeout := fs.Duration("idle-timeout", 5*time.Minute, "close connections idle this long")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "per-flush write deadline")
	lease := fs.Duration("lease", time.Minute, "server-side cursor lease")
	shedQueue := fs.Int("shed-queue", 0, "shed writes at this migrator queue depth (0 = off)")
	shedWAL := fs.Int64("shed-wal-bytes", 0, "shed writes at this WAL backlog (0 = off)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max graceful drain before severing connections")
	metricsAddr := fs.String("metrics-addr", "", "HTTP observability sidecar address (/metrics, /debug/*; empty = off)")
	status := fs.Bool("status", false, "print a running server's stats and exit")
	watch := fs.Duration("watch", 0, "with -status, re-sample every interval until interrupted")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *status {
		return printStatus(stdout, *addr, *watch, sigCh)
	}
	if *dir == "" {
		return errors.New("-dir is required (or -status to query a running server)")
	}

	d, err := db.Open(db.Config{
		Dir:                 *dir,
		Shards:              *shards,
		PagedDevices:        *paged,
		BackgroundMigration: *migration,
		CheckpointBytes:     *ckptBytes,
	})
	if err != nil {
		return err
	}

	srv := server.New(d, server.Config{
		MaxFrameBytes:       *maxFrame,
		Window:              *window,
		IdleTimeout:         *idleTimeout,
		WriteTimeout:        *writeTimeout,
		CursorLease:         *lease,
		ShedMigratorQueue:   *shedQueue,
		ShedWALBacklogBytes: *shedWAL,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = d.Close()
		return err
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	// Observability sidecar: the server's instruments join the engine's
	// registry, then one handler exposes the whole surface.
	var msrv *http.Server
	if *metricsAddr != "" {
		srv.RegisterMetrics(d.Metrics())
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			_ = ln.Close()
			_ = d.Close()
			return err
		}
		msrv = &http.Server{Handler: obs.Handler(d.Metrics(), d.Events())}
		go func() { _ = msrv.Serve(mln) }()
		fmt.Fprintf(stdout, "metrics on http://%s/metrics\n", mln.Addr())
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "caught %v, draining\n", sig)
	case err := <-serveDone:
		_ = d.Close()
		if err != nil {
			return err
		}
		return errors.New("listener closed unexpectedly")
	}

	// The drain order of the durability contract: stop intake, finish
	// and acknowledge every in-flight batch, close cursors, then close
	// the database (final checkpoint in durable mode).
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stdout, "drain timeout: %v (severed remaining connections)\n", err)
	}
	if msrv != nil {
		_ = msrv.Close()
	}
	if err := <-serveDone; err != nil {
		_ = d.Close()
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "drained: %d ops served, %d shed, p99 %dus\n", st.Ops, st.Shed, st.P99Micros)
	if err := d.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "closed")
	return nil
}

func printStatus(stdout io.Writer, addr string, watch time.Duration, sigCh <-chan os.Signal) error {
	c, err := client.Dial(addr, client.Options{DialTimeout: 5 * time.Second})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	st, err := c.Stats()
	if err != nil {
		return err
	}
	renderStatus(stdout, addr, st, nil, 0)
	if watch <= 0 {
		return nil
	}
	t := time.NewTicker(watch)
	defer t.Stop()
	for {
		select {
		case <-sigCh:
			return nil
		case <-t.C:
			prev := st
			st, err = c.Stats()
			if err != nil {
				return err
			}
			renderStatus(stdout, addr, st, &prev, watch)
		}
	}
}

// renderStatus prints one stats sample; with a previous sample it adds
// the interval's throughput deltas.
func renderStatus(stdout io.Writer, addr string, st wire.StatsReply, prev *wire.StatsReply, iv time.Duration) {
	fmt.Fprintf(stdout, "tsbserve %s\n", addr)
	fmt.Fprintf(stdout, "  connections: %d open, %d total\n", st.Conns, st.TotalConns)
	fmt.Fprintf(stdout, "  in-flight:   %d\n", st.InFlight)
	fmt.Fprintf(stdout, "  ops:         %d executed\n", st.Ops)
	fmt.Fprintf(stdout, "  overload:    %d writes shed by admission control\n", st.Shed)
	fmt.Fprintf(stdout, "  cursors:     %d open, %d reclaimed by lease\n", st.Cursors, st.CursorsReclaimed)
	fmt.Fprintf(stdout, "  latency:     p50 %dus, p99 %dus\n", st.P50Micros, st.P99Micros)
	if prev != nil && iv > 0 {
		secs := iv.Seconds()
		fmt.Fprintf(stdout, "  interval:    %.0f ops/s, %.0f shed/s\n",
			float64(st.Ops-prev.Ops)/secs, float64(st.Shed-prev.Shed)/secs)
	}
	if len(st.PerOp) > 0 {
		fmt.Fprintf(stdout, "  %-14s %10s %10s %10s %10s\n", "per-op", "count", "p50", "p99", "max")
		for _, oc := range st.PerOp {
			fmt.Fprintf(stdout, "  %-14s %10d %8dus %8dus %8dus\n",
				oc.Name, oc.Count, oc.P50Micros, oc.P99Micros, oc.MaxMicros)
		}
	}
	if st.Draining {
		fmt.Fprintln(stdout, "  draining")
	}
}
