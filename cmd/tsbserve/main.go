// Command tsbserve serves a TSB-tree database over TCP: the network
// face of the engine, speaking the pipelined binary protocol of
// internal/server/wire. It opens (or recovers) the database at -dir,
// listens on -addr, and drains cleanly on SIGTERM/SIGINT: in-flight
// request windows finish and are acknowledged, cursors close, and the
// database closes last — every acknowledged commit is on disk before
// the process exits.
//
// Usage:
//
//	tsbserve -dir DATA [-addr HOST:PORT] [-shards N] [-paged]
//	         [-migration] [-checkpoint-bytes N]
//	         [-window N] [-max-frame BYTES]
//	         [-idle-timeout D] [-write-timeout D] [-lease D]
//	         [-shed-queue N] [-shed-wal-bytes N] [-drain-timeout D]
//
//	tsbserve -status -addr HOST:PORT
//
// -status dials a running server and prints its stats surface
// (connections, in-flight requests, shed count, open cursors, op
// latency percentiles) instead of serving.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/db"
	"repro/internal/server"
	"repro/internal/server/client"
)

func main() {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], os.Stdout, sigCh); err != nil {
		fmt.Fprintln(os.Stderr, "tsbserve:", err)
		os.Exit(1)
	}
}

// run is main minus the process plumbing: args are the command line,
// stdout receives the human output, and sigCh delivers the shutdown
// signal — tests inject a synthetic SIGTERM through it.
func run(args []string, stdout io.Writer, sigCh <-chan os.Signal) error {
	fs := flag.NewFlagSet("tsbserve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:4611", "listen address (or dial address with -status)")
	dir := fs.String("dir", "", "database directory (created or recovered; required to serve)")
	shards := fs.Int("shards", 4, "shard count for a newly created database")
	paged := fs.Bool("paged", false, "paged durable mode (disk page/burn devices)")
	migration := fs.Bool("migration", false, "background time-split migration")
	ckptBytes := fs.Int64("checkpoint-bytes", 0, "background checkpoint threshold (0 = engine default, <0 = off)")
	window := fs.Int("window", 64, "per-connection in-flight request window")
	maxFrame := fs.Int("max-frame", 0, "max frame payload bytes (0 = protocol default)")
	idleTimeout := fs.Duration("idle-timeout", 5*time.Minute, "close connections idle this long")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "per-flush write deadline")
	lease := fs.Duration("lease", time.Minute, "server-side cursor lease")
	shedQueue := fs.Int("shed-queue", 0, "shed writes at this migrator queue depth (0 = off)")
	shedWAL := fs.Int64("shed-wal-bytes", 0, "shed writes at this WAL backlog (0 = off)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max graceful drain before severing connections")
	status := fs.Bool("status", false, "print a running server's stats and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *status {
		return printStatus(stdout, *addr)
	}
	if *dir == "" {
		return errors.New("-dir is required (or -status to query a running server)")
	}

	d, err := db.Open(db.Config{
		Dir:                 *dir,
		Shards:              *shards,
		PagedDevices:        *paged,
		BackgroundMigration: *migration,
		CheckpointBytes:     *ckptBytes,
	})
	if err != nil {
		return err
	}

	srv := server.New(d, server.Config{
		MaxFrameBytes:       *maxFrame,
		Window:              *window,
		IdleTimeout:         *idleTimeout,
		WriteTimeout:        *writeTimeout,
		CursorLease:         *lease,
		ShedMigratorQueue:   *shedQueue,
		ShedWALBacklogBytes: *shedWAL,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = d.Close()
		return err
	}
	fmt.Fprintf(stdout, "listening on %s\n", ln.Addr())

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	select {
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "caught %v, draining\n", sig)
	case err := <-serveDone:
		_ = d.Close()
		if err != nil {
			return err
		}
		return errors.New("listener closed unexpectedly")
	}

	// The drain order of the durability contract: stop intake, finish
	// and acknowledge every in-flight batch, close cursors, then close
	// the database (final checkpoint in durable mode).
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stdout, "drain timeout: %v (severed remaining connections)\n", err)
	}
	if err := <-serveDone; err != nil {
		_ = d.Close()
		return err
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "drained: %d ops served, %d shed, p99 %dus\n", st.Ops, st.Shed, st.P99Micros)
	if err := d.Close(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "closed")
	return nil
}

func printStatus(stdout io.Writer, addr string) error {
	c, err := client.Dial(addr, client.Options{DialTimeout: 5 * time.Second})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "tsbserve %s\n", addr)
	fmt.Fprintf(stdout, "  connections: %d open, %d total\n", st.Conns, st.TotalConns)
	fmt.Fprintf(stdout, "  in-flight:   %d\n", st.InFlight)
	fmt.Fprintf(stdout, "  ops:         %d (%d shed)\n", st.Ops, st.Shed)
	fmt.Fprintf(stdout, "  cursors:     %d open, %d reclaimed by lease\n", st.Cursors, st.CursorsReclaimed)
	fmt.Fprintf(stdout, "  latency:     p50 %dus, p99 %dus\n", st.P50Micros, st.P99Micros)
	if st.Draining {
		fmt.Fprintln(stdout, "  draining")
	}
	return nil
}
