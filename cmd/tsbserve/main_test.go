package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/record"
	"repro/internal/server/client"
)

// prefixWriter hands each stdout line to a callback as it appears —
// how the test learns the ephemeral listen address.
type prefixWriter struct {
	mu    sync.Mutex
	buf   bytes.Buffer
	lines []string
	line  func(string)
}

func (w *prefixWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			w.buf.WriteString(line) // partial line back
			break
		}
		line = strings.TrimSpace(line)
		w.lines = append(w.lines, line)
		w.line(line)
	}
	return len(p), nil
}

func (w *prefixWriter) output() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return strings.Join(w.lines, "\n")
}

// TestSIGTERMDrainMidPipeline is the graceful-drain contract end to
// end: clients hammer the daemon with pipelined commits and open
// cursors, a SIGTERM lands mid-flight, and afterwards (a) run returned
// cleanly, (b) reopening the directory shows every acknowledged commit,
// and (c) no cursor or connection leaked. Run under -race this also
// proves the drain path clean of latch races.
func TestSIGTERMDrainMidPipeline(t *testing.T) {
	dir := t.TempDir()
	addrCh := make(chan string, 1)
	out := &prefixWriter{line: func(line string) {
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			addrCh <- rest
		}
	}}
	sigCh := make(chan os.Signal, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{
			"-dir", dir, "-addr", "127.0.0.1:0",
			"-shards", "4", "-window", "16", "-drain-timeout", "20s",
		}, out, sigCh)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}

	const workers = 6
	type acked struct {
		key string
		ct  record.Timestamp
	}
	ackedCh := make(chan acked, workers*10000)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Tenant: []byte("term"), Window: 16})
			if err != nil {
				return
			}
			defer func() { _ = c.Close() }()
			// Leave a cursor open so drain must also reap cursor state.
			if sc, err := c.Scan(nil, record.InfiniteBound(), client.ScanOptions{}); err == nil {
				defer func() { _ = sc.Close() }()
			}
			type inflight struct {
				key  string
				call *client.Call
			}
			var window []inflight
			reap := func(f inflight) {
				if ct, err := f.call.Time(); err == nil {
					ackedCh <- acked{f.key, ct}
				}
			}
			for i := 0; ; i++ {
				key := fmt.Sprintf("w%d-%06d", w, i)
				call, err := c.PutAsync(record.Key(key), []byte("sigterm-payload"))
				if err != nil {
					break
				}
				window = append(window, inflight{key, call})
				if len(window) >= 8 {
					reap(window[0])
					window = window[1:]
				}
			}
			for _, f := range window {
				reap(f)
			}
		}(w)
	}

	// Mid-pipeline, pull the trigger.
	time.Sleep(150 * time.Millisecond)
	sigCh <- syscall.SIGTERM

	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("run after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	wg.Wait()
	close(ackedCh)

	stdout := out.output()
	for _, want := range []string{"caught terminated, draining", "drained:", "closed"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("daemon output missing %q:\n%s", want, stdout)
		}
	}

	// Every acknowledged commit must be in the reopened database.
	d, err := db.Open(db.Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	count := 0
	for a := range ackedCh {
		count++
		pk := record.PrefixKey([]byte("term"), record.Key(a.key))
		if _, found, err := d.GetAsOf(pk, a.ct); err != nil || !found {
			t.Fatalf("acked commit %q@%d lost across SIGTERM drain (err=%v)", a.key, a.ct, err)
		}
	}
	if count == 0 {
		t.Fatal("no acked commits before SIGTERM; test proved nothing")
	}
	t.Logf("verified %d acked commits across SIGTERM drain", count)
}

// TestStatusFlag exercises the -status path against a live daemon.
func TestStatusFlag(t *testing.T) {
	dir := t.TempDir()
	addrCh := make(chan string, 1)
	out := &prefixWriter{line: func(line string) {
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			select {
			case addrCh <- rest:
			default:
			}
		}
	}}
	sigCh := make(chan os.Signal, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{"-dir", dir, "-addr", "127.0.0.1:0"}, out, sigCh)
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-runDone:
		t.Fatalf("daemon exited: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("no address")
	}

	c, err := client.Dial(addr, client.Options{Tenant: []byte("s")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put(record.Key("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	var status bytes.Buffer
	if err := run([]string{"-status", "-addr", addr}, &status, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"connections:", "ops:", "overload:", "cursors:", "latency:",
		"per-op", "hello", "put",
	} {
		if !strings.Contains(status.String(), want) {
			t.Fatalf("status output missing %q:\n%s", want, status.String())
		}
	}

	sigCh <- syscall.SIGTERM
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
}

// TestMetricsScrape is the exposition contract against a live daemon:
// -metrics-addr serves /metrics, the output survives a scraper-grade
// parse, and the required engine and server series are present with
// real observations behind them. This is the test CI's scrape smoke
// runs under -race.
func TestMetricsScrape(t *testing.T) {
	dir := t.TempDir()
	addrCh := make(chan string, 1)
	metricsCh := make(chan string, 1)
	out := &prefixWriter{line: func(line string) {
		if rest, ok := strings.CutPrefix(line, "listening on "); ok {
			select {
			case addrCh <- rest:
			default:
			}
		}
		if rest, ok := strings.CutPrefix(line, "metrics on "); ok {
			select {
			case metricsCh <- rest:
			default:
			}
		}
	}}
	sigCh := make(chan os.Signal, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- run([]string{
			"-dir", dir, "-addr", "127.0.0.1:0", "-metrics-addr", "127.0.0.1:0",
		}, out, sigCh)
	}()
	var addr, metricsURL string
	for addr == "" || metricsURL == "" {
		select {
		case addr = <-addrCh:
		case metricsURL = <-metricsCh:
		case err := <-runDone:
			t.Fatalf("daemon exited: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never announced its addresses")
		}
	}

	// Drive real work through every instrumented layer: durable commits
	// (WAL fsync, commit latency), reads (shard latches), a scan.
	c, err := client.Dial(addr, client.Options{Tenant: []byte("m")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		key := record.Key(fmt.Sprintf("k%03d", i))
		if _, err := c.Put(key, []byte("scrape-me")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	body := httpGet(t, metricsURL)
	samples, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("scraper rejected /metrics: %v\n%s", err, body)
	}
	required := []string{
		"tsb_commit_latency_seconds",
		"tsb_wal_fsync_seconds",
		"tsb_latch_wait_seconds",
		"tsb_buffer_hit_ratio",
		"tsb_migrator_phase_seconds",
		"tsb_server_op_seconds",
		"tsb_server_ops_total",
		"tsb_server_shed_total",
		"tsb_server_conns_total",
	}
	if missing := obs.RequireSeries(samples, required); len(missing) != 0 {
		t.Fatalf("required series missing from /metrics: %v", missing)
	}
	// The workload above must be visible, not just the series' shapes.
	for _, s := range samples {
		if s.Series == `tsb_commit_latency_seconds_count{mode="durable"}` && s.Value == 0 {
			t.Error("durable commits ran but tsb_commit_latency_seconds counted none")
		}
		if s.Name == "tsb_server_ops_total" && s.Value < 64 {
			t.Errorf("tsb_server_ops_total = %v after 64+ ops", s.Value)
		}
	}

	// The JSON mirror must decode, and the debug rings must serve.
	base := strings.TrimSuffix(metricsURL, "/metrics")
	var vars map[string]any
	if err := json.Unmarshal(httpGet(t, base+"/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["tsb_server_ops_total"]; !ok {
		t.Error("/debug/vars missing tsb_server_ops_total")
	}
	httpGet(t, base+"/debug/events")
	httpGet(t, base+"/debug/slow")

	sigCh <- syscall.SIGTERM
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return body
}
