package main

import (
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
)

func TestRun(t *testing.T) {
	if err := run("tsb-lastupdate", 600, 0.5, 1, true, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadPolicy(t *testing.T) {
	if err := run("bogus", 100, 0.5, 1, false, 0); err == nil {
		t.Fatal("bogus policy should fail")
	}
}

func TestDumpWALDir(t *testing.T) {
	dir := t.TempDir()
	d, err := db.Open(db.Config{Dir: dir, Shards: 2, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey("key"), []byte("v"))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := dumpWALDir(&sb, dir); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"checkpoint: format v3", "2 shard(s)", "lsn 5", "tail: clean", "5 commit record(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestDumpWALDirEmpty(t *testing.T) {
	var sb strings.Builder
	if err := dumpWALDir(&sb, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "checkpoint: none") || !strings.Contains(out, "no segments") {
		t.Errorf("empty dir dump:\n%s", out)
	}
}

func TestDumpPagedDir(t *testing.T) {
	dir := t.TempDir()
	d, err := db.Open(db.Config{Dir: dir, PagedDevices: true, Shards: 2, CheckpointBytes: -1,
		LeafCapacity: 512, IndexCapacity: 1024, SectorSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey("key"+string(rune('a'+i%26))), []byte("0123456789abcdef0123456789"))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := dumpPagedDir(&sb, dir); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"format v4 (paged)", "page file", "crc ok", "burn file",
		"live payload", "dead payload, utilization", "0 bad"} {
		if !strings.Contains(out, want) {
			t.Errorf("paged dump missing %q:\n%s", want, out)
		}
	}
	// The WAL dump also understands a paged directory.
	sb.Reset()
	if err := dumpWALDir(&sb, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "paged devices: epoch") {
		t.Errorf("waldir dump missing paged header:\n%s", sb.String())
	}
}

func TestDumpPagedDirRejectsLogical(t *testing.T) {
	dir := t.TempDir()
	d, err := db.Open(db.Config{Dir: dir, CheckpointBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	var sb strings.Builder
	if err := dumpPagedDir(&sb, dir); err == nil || !strings.Contains(err.Error(), "logical") {
		t.Fatalf("dumpPagedDir on logical dir: %v", err)
	}
}
