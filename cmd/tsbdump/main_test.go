package main

import "testing"

func TestRun(t *testing.T) {
	if err := run("tsb-lastupdate", 600, 0.5, 1, true, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadPolicy(t *testing.T) {
	if err := run("bogus", 100, 0.5, 1, false, 0); err == nil {
		t.Fatal("bogus policy should fail")
	}
}
