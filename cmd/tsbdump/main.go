// Command tsbdump builds a TSB-tree from a synthetic workload and dumps
// its structure, statistics, and invariant-check result — a debugging and
// inspection tool for the reproduction.
//
// Usage:
//
//	tsbdump [-policy NAME] [-ops N] [-u FRACTION] [-dump] [-seed N] [-scan N]
//
// -scan N streams the first N records of the current snapshot through the
// lazy cursor API — pagination over the tree, not a materialized scan.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/record"
)

func main() {
	policy := flag.String("policy", "tsb-lastupdate",
		"splitting policy: "+strings.Join(experiments.PolicyNames, ", "))
	ops := flag.Int("ops", 2000, "operations to apply")
	u := flag.Float64("u", 0.5, "update fraction in [0,1]")
	seed := flag.Int64("seed", 1, "workload seed")
	dump := flag.Bool("dump", false, "print the full node-by-node tree dump")
	scan := flag.Int("scan", 0, "stream the first N snapshot records through a cursor")
	flag.Parse()

	if err := run(*policy, *ops, *u, *seed, *dump, *scan); err != nil {
		fmt.Fprintln(os.Stderr, "tsbdump:", err)
		os.Exit(1)
	}
}

func run(policy string, ops int, u float64, seed int64, dump bool, scan int) error {
	p := experiments.Params{Ops: ops, Seed: seed}
	res, err := experiments.RunTSB(policy, u, p)
	if err != nil {
		return err
	}
	st := res.Tree.Stats()
	fmt.Printf("policy=%s ops=%d update-fraction=%.2f\n\n", policy, ops, u)
	fmt.Printf("height:               %d\n", st.Height)
	fmt.Printf("current nodes:        %d\n", st.CurrentNodes)
	fmt.Printf("historical nodes:     %d\n", st.HistoricalNodes)
	fmt.Printf("leaf splits:          %d time, %d key, %d time+key\n",
		st.LeafTimeSplits, st.LeafKeySplits, st.LeafTimeKeySplits)
	fmt.Printf("index splits:         %d time (local), %d keyspace\n",
		st.IndexTimeSplits, st.IndexKeySplits)
	fmt.Printf("redundant versions:   %d\n", st.RedundantVersions)
	fmt.Printf("redundant idx entries:%d\n", st.RedundantIndexEntries)
	fmt.Printf("versions migrated:    %d (%d bytes)\n", st.VersionsMigrated, st.BytesMigrated)
	fmt.Printf("marked leaves:        %d (forced splits: %d)\n", st.MarkedLeaves, st.ForcedTimeSplits)

	rep := metrics.Collect(st, res.Mag.Stats(), res.WORM.Stats(), 4096, 1024)
	fmt.Printf("\nspace: %s\n", rep)

	if err := res.Tree.CheckInvariants(); err != nil {
		return fmt.Errorf("INVARIANT VIOLATION: %w", err)
	}
	fmt.Println("invariants: OK")

	analysis, err := res.Tree.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("\nper-level profile:\n%s", analysis)

	if scan > 0 {
		fmt.Printf("\nfirst %d records of the snapshot at t=%s (streamed):\n", scan, res.Tree.Now())
		cur := res.Tree.NewCursor(res.Tree.Now(), nil, record.InfiniteBound())
		for i := 0; i < scan && cur.Next(); i++ {
			fmt.Printf("  %s\n", cur.Version())
		}
		if err := cur.Err(); err != nil {
			return err
		}
	}

	if dump {
		s, err := res.Tree.Dump()
		if err != nil {
			return err
		}
		fmt.Println("\n" + s)
	}
	return nil
}
