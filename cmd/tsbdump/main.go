// Command tsbdump builds a TSB-tree from a synthetic workload and dumps
// its structure, statistics, and invariant-check result — a debugging and
// inspection tool for the reproduction.
//
// Usage:
//
//	tsbdump [-policy NAME] [-ops N] [-u FRACTION] [-dump] [-seed N] [-scan N]
//	tsbdump -waldir DIR
//	tsbdump -pagedir DIR
//
// -scan N streams the first N records of the current snapshot through the
// lazy cursor API — pagination over the tree, not a materialized scan.
//
// -waldir DIR inspects a durable database directory instead: the
// checkpoint header (format, shards, clock, LSN boundary, secondary
// indexes) and every WAL segment frame by frame — LSN, transaction,
// commit time, write-set size — ending with whether the tail is clean or
// torn. It reads without locking; safe on a live or crashed directory.
//
// -pagedir DIR inspects a paged durable directory's device files: the
// magnetic page file page by page (written/hole, payload bytes, CRC
// status) and the WORM burn file sector by sector (payload vs. waste,
// CRC status, whether the sector is inside the checkpoint boundary or
// an orphaned post-boundary burn), ending with the burned-waste
// accounting — SpaceO, live payload, waste (dead payload from abandoned
// migrations and orphans counts here, not as payload), utilization. It
// reads without locking; safe on a live or crashed directory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/pagestore"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
)

func main() {
	policy := flag.String("policy", "tsb-lastupdate",
		"splitting policy: "+strings.Join(experiments.PolicyNames, ", "))
	ops := flag.Int("ops", 2000, "operations to apply")
	u := flag.Float64("u", 0.5, "update fraction in [0,1]")
	seed := flag.Int64("seed", 1, "workload seed")
	dump := flag.Bool("dump", false, "print the full node-by-node tree dump")
	scan := flag.Int("scan", 0, "stream the first N snapshot records through a cursor")
	waldir := flag.String("waldir", "", "inspect a durable database directory (checkpoint + WAL) and exit")
	pagedir := flag.String("pagedir", "", "inspect a paged durable directory's device files (page-by-page, sector-by-sector) and exit")
	flag.Parse()

	if *waldir != "" {
		if err := dumpWALDir(os.Stdout, *waldir); err != nil {
			fmt.Fprintln(os.Stderr, "tsbdump:", err)
			os.Exit(1)
		}
		return
	}
	if *pagedir != "" {
		if err := dumpPagedDir(os.Stdout, *pagedir); err != nil {
			fmt.Fprintln(os.Stderr, "tsbdump:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*policy, *ops, *u, *seed, *dump, *scan); err != nil {
		fmt.Fprintln(os.Stderr, "tsbdump:", err)
		os.Exit(1)
	}
}

// dumpWALDir prints a durable directory's checkpoint header and a
// frame-by-frame listing of every WAL segment.
func dumpWALDir(w io.Writer, dir string) error {
	info, found, err := wal.ReadCheckpointInfo(dir)
	if err != nil {
		return err
	}
	if found {
		version, kind := wal.CheckpointFormatVersion, "logical"
		if info.Paged != nil {
			version, kind = wal.PagedCheckpointFormatVersion, "paged"
		}
		fmt.Fprintf(w, "checkpoint: format v%d (%s), %d shard(s), clock=%s, LSN boundary %d\n",
			version, kind, info.Shards, info.Clock, info.LSN)
		if info.Paged != nil {
			fmt.Fprintf(w, "paged devices: epoch %d, %d pages of %d B, %d sectors of %d B fsynced\n",
				info.Paged.Epoch, info.Paged.Alloc.Pages, info.Paged.PageSize,
				info.Paged.Burned, info.Paged.SectorSize)
		}
		if len(info.Secondaries) > 0 {
			fmt.Fprintf(w, "secondary indexes: %s\n", strings.Join(info.Secondaries, ", "))
		}
	} else {
		fmt.Fprintln(w, "checkpoint: none")
	}
	segs, err := wal.Segments(dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		fmt.Fprintln(w, "wal: no segments")
		return nil
	}
	total := 0
	for _, seg := range segs {
		fmt.Fprintf(w, "segment %d (%s):\n", seg.Index, seg.Path)
		n := 0
		_, clean, err := wal.ReplayFile(seg.Path, 0, func(lsn uint64, rec txn.CommitRecord) error {
			covered := ""
			if found && lsn <= info.LSN {
				covered = "  [in checkpoint]"
			}
			fmt.Fprintf(w, "  lsn %-6d txn %-6d t=%-8s %d key(s)%s\n",
				lsn, rec.TxnID, rec.Time, len(rec.Versions), covered)
			n++
			return nil
		})
		if err != nil {
			return err
		}
		total += n
		if clean {
			fmt.Fprintf(w, "  tail: clean (%d record(s))\n", n)
		} else {
			fmt.Fprintf(w, "  tail: TORN after %d intact record(s) — recovery stops here\n", n)
		}
	}
	fmt.Fprintf(w, "total: %d commit record(s) across %d segment(s)\n", total, len(segs))
	return nil
}

// dumpPagedDir prints a paged durable directory's device files page by
// page and sector by sector, with CRC status and the burned-waste
// accounting.
func dumpPagedDir(w io.Writer, dir string) error {
	info, found, err := wal.ReadCheckpointInfo(dir)
	if err != nil {
		return err
	}
	var boundary, metaDead uint64
	if found && info.Paged != nil {
		m := info.Paged
		boundary = m.Burned
		metaDead = m.DeadBytes
		fmt.Fprintf(w, "checkpoint: format v%d (paged), epoch %d, clock=%s, LSN boundary %d\n",
			wal.PagedCheckpointFormatVersion, m.Epoch, info.Clock, info.LSN)
		fmt.Fprintf(w, "allocator: %d pages (%d free), boundary %d burned sectors\n",
			m.Alloc.Pages, len(m.Alloc.Free), m.Burned)
		if metaDead > 0 {
			fmt.Fprintf(w, "dead payload: %d B of in-boundary burns referenced by nothing (abandoned migrations; compaction reclaims)\n",
				metaDead)
		}
	} else if found {
		return fmt.Errorf("%s holds a logical-device database (use -waldir)", dir)
	} else {
		fmt.Fprintln(w, "checkpoint: none (uninstalled or fresh directory)")
	}

	pagePath, burnPath := pagestore.Paths(dir)
	if _, err := os.Stat(pagePath + ".journal"); err == nil {
		fmt.Fprintln(w, "rollback journal: PRESENT (a checkpoint flush was in progress)")
	}

	fmt.Fprintf(w, "\npage file %s:\n", pagePath)
	written, holes, bad := 0, 0, 0
	pageSize, pages, err := pagestore.InspectPages(pagePath, func(p pagestore.PageInfo) error {
		switch {
		case !p.Written:
			holes++
			fmt.Fprintf(w, "  page %-6d hole (never flushed)\n", p.Page)
		case p.CRCOK:
			written++
			fmt.Fprintf(w, "  page %-6d %4d B  crc ok\n", p.Page, p.Len)
		default:
			bad++
			fmt.Fprintf(w, "  page %-6d %4d B  CRC BAD\n", p.Page, p.Len)
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %d slot(s) of %d B: %d written, %d hole(s), %d bad\n",
		pages, pageSize, written, holes, bad)

	fmt.Fprintf(w, "\nburn file %s:\n", burnPath)
	var payload, waste, orphanWaste uint64
	badSectors := 0
	sectorSize, sectors, err := pagestore.InspectSectors(burnPath, func(s pagestore.SectorInfo) error {
		mark := ""
		if found && s.Sector >= boundary {
			mark = "  [past boundary: orphan burn]"
		}
		if !s.CRCOK {
			badSectors++
			fmt.Fprintf(w, "  sector %-6d CRC BAD / torn%s\n", s.Sector, mark)
			return nil
		}
		payload += uint64(s.Len)
		fmt.Fprintf(w, "  sector %-6d %4d B payload%s\n", s.Sector, s.Len, mark)
		if found && s.Sector >= boundary {
			orphanWaste += uint64(s.Len)
		}
		return nil
	})
	if err != nil {
		return err
	}
	burnedBytes := sectors * uint64(sectorSize)
	// Dead payload — checkpoint-recorded abandoned burns plus orphaned
	// post-boundary burns — is unreachable and counts as waste, not
	// payload; compaction reclaims it. Clamped so a freshly compacted or
	// inconsistent (mid-crash) directory still reports utilization in
	// [0,1].
	dead := metaDead + orphanWaste
	if dead > payload {
		dead = payload
	}
	live := payload - dead
	if burnedBytes >= live {
		waste = burnedBytes - live
	}
	util := 1.0
	if burnedBytes > 0 {
		util = float64(live) / float64(burnedBytes)
		if util < 0 {
			util = 0
		}
		if util > 1 {
			util = 1
		}
	}
	fmt.Fprintf(w, "  %d sector(s) of %d B burned = %d B SpaceO: %d B live payload, %d B waste (%d B dead payload, utilization %.2f), %d bad\n",
		sectors, sectorSize, burnedBytes, live, waste, dead, util, badSectors)
	if orphanWaste > 0 {
		fmt.Fprintf(w, "  orphaned post-boundary burns hold %d payload byte(s) referenced by nothing (dead waste)\n", orphanWaste)
	}
	return nil
}

func run(policy string, ops int, u float64, seed int64, dump bool, scan int) error {
	p := experiments.Params{Ops: ops, Seed: seed}
	res, err := experiments.RunTSB(policy, u, p)
	if err != nil {
		return err
	}
	st := res.Tree.Stats()
	fmt.Printf("policy=%s ops=%d update-fraction=%.2f\n\n", policy, ops, u)
	fmt.Printf("height:               %d\n", st.Height)
	fmt.Printf("current nodes:        %d\n", st.CurrentNodes)
	fmt.Printf("historical nodes:     %d\n", st.HistoricalNodes)
	fmt.Printf("leaf splits:          %d time, %d key, %d time+key\n",
		st.LeafTimeSplits, st.LeafKeySplits, st.LeafTimeKeySplits)
	fmt.Printf("index splits:         %d time (local), %d keyspace\n",
		st.IndexTimeSplits, st.IndexKeySplits)
	fmt.Printf("redundant versions:   %d\n", st.RedundantVersions)
	fmt.Printf("redundant idx entries:%d\n", st.RedundantIndexEntries)
	fmt.Printf("versions migrated:    %d (%d bytes)\n", st.VersionsMigrated, st.BytesMigrated)
	fmt.Printf("marked leaves:        %d (forced splits: %d)\n", st.MarkedLeaves, st.ForcedTimeSplits)

	rep := metrics.Collect(st, res.Mag.Stats(), res.WORM.Stats(), 4096, 1024)
	fmt.Printf("\nspace: %s\n", rep)

	if err := res.Tree.CheckInvariants(); err != nil {
		return fmt.Errorf("INVARIANT VIOLATION: %w", err)
	}
	fmt.Println("invariants: OK")

	analysis, err := res.Tree.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("\nper-level profile:\n%s", analysis)

	if scan > 0 {
		fmt.Printf("\nfirst %d records of the snapshot at t=%s (streamed):\n", scan, res.Tree.Now())
		cur := res.Tree.NewCursor(res.Tree.Now(), nil, record.InfiniteBound())
		for i := 0; i < scan && cur.Next(); i++ {
			fmt.Printf("  %s\n", cur.Version())
		}
		if err := cur.Err(); err != nil {
			return err
		}
	}

	if dump {
		s, err := res.Tree.Dump()
		if err != nil {
			return err
		}
		fmt.Println("\n" + s)
	}
	return nil
}
