package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

func TestRunSubset(t *testing.T) {
	// A tiny run of the non-sweep experiments plus one sweep-backed
	// table, mostly to keep the wiring honest.
	p := experiments.Params{Ops: 800, ValueSize: 16, Seed: 1}
	if err := run(map[string]bool{"E5": true, "E9": true}, p, nil, 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	p := experiments.Params{Ops: 800, ValueSize: 16, Seed: 1}
	if err := run(map[string]bool{"E1": true, "E4": true, "E8": true}, p, nil, 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrentWritesBenchJSON(t *testing.T) {
	p := experiments.Params{Ops: 400, ValueSize: 16, Seed: 1}
	path := filepath.Join(t.TempDir(), "BENCH_E10.json")
	if err := run(map[string]bool{"E10": true}, p, []int{1, 2}, 4, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var points []benchPoint
	if err := json.Unmarshal(data, &points); err != nil {
		t.Fatalf("bench json: %v\n%s", err, data)
	}
	if len(points) != 2 || points[0].OpsPerSec <= 0 || points[1].Shards != 2 {
		t.Fatalf("unexpected bench points: %+v", points)
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseShards: %v %v", got, err)
	}
	if _, err := parseShards("0"); err == nil {
		t.Fatal("accepted shard count 0")
	}
	if _, err := parseShards("x"); err == nil {
		t.Fatal("accepted junk")
	}
}
