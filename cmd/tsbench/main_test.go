package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

func TestRunSubset(t *testing.T) {
	// A tiny run of the non-sweep experiments plus one sweep-backed
	// table, mostly to keep the wiring honest.
	p := experiments.Params{Ops: 800, ValueSize: 16, Seed: 1}
	if err := run(map[string]bool{"E5": true, "E9": true}, p, nil, 4, 8, 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	p := experiments.Params{Ops: 800, ValueSize: 16, Seed: 1}
	if err := run(map[string]bool{"E1": true, "E4": true, "E8": true}, p, nil, 4, 8, 4, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcurrentWritesBenchJSON(t *testing.T) {
	p := experiments.Params{Ops: 400, ValueSize: 16, Seed: 1}
	path := filepath.Join(t.TempDir(), "BENCH_E10.json")
	if err := run(map[string]bool{"E10": true}, p, []int{1, 2}, 4, 8, 4, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var points []benchPoint
	if err := json.Unmarshal(data, &points); err != nil {
		t.Fatalf("bench json: %v\n%s", err, data)
	}
	// Two E10 curve points plus the five trajectory points (cursor page
	// reads, put latency, worm burn rate, checkpoint duration, group
	// commit) plus the two migration-latency points (inline/background)
	// plus the two maintenance points (compaction, checkpoint pause)
	// plus the four served closed-loop points (throughput and p99, one
	// pair per migration mode) plus the two query-engine points
	// (pushdown page reads, parallel-scan speedup).
	if len(points) != 17 {
		t.Fatalf("got %d bench points: %+v", len(points), points)
	}
	if points[0].OpsPerSec <= 0 || points[1].Shards != 2 {
		t.Fatalf("unexpected E10 points: %+v", points[:2])
	}
	byExp := map[string]benchPoint{}
	for _, p := range points {
		byExp[p.Experiment] = p
	}
	if p := byExp["cursor-limit1"]; p.PageReads <= 0 {
		t.Errorf("cursor-limit1 point = %+v", p)
	}
	if p := byExp["put-latency"]; p.AvgPutMicros <= 0 {
		t.Errorf("put-latency point = %+v", p)
	}
	if p := byExp["group-commit"]; p.RecordsPerSync <= 0 || p.OpsPerSec <= 0 {
		t.Errorf("group-commit point = %+v", p)
	}
	if p := byExp["worm-burn-rate"]; p.WormUtilization <= 0 {
		t.Errorf("worm-burn-rate point = %+v", p)
	}
	if p := byExp["checkpoint-duration"]; p.CheckpointMillis <= 0 || p.FlushedPages == 0 {
		t.Errorf("checkpoint-duration point = %+v", p)
	}
	if p := byExp["migration-latency-inline"]; p.PutP99Micros <= 0 || p.SplitLatchMillis <= 0 {
		t.Errorf("migration-latency-inline point = %+v", p)
	}
	if p := byExp["migration-latency-background"]; p.PutP99Micros <= 0 {
		t.Errorf("migration-latency-background point = %+v", p)
	}
	if p := byExp["maintenance-compaction"]; p.WasteReclaimedBytes == 0 || p.WormUtilization <= 0 {
		t.Errorf("maintenance-compaction point = %+v", p)
	}
	if p := byExp["maintenance-ckpt-pause"]; p.CkptPauseMillis <= 0 {
		t.Errorf("maintenance-ckpt-pause point = %+v", p)
	}
	for _, mode := range []string{"inline", "background"} {
		if p := byExp["server-throughput-"+mode]; p.OpsPerSec <= 0 {
			t.Errorf("server-throughput-%s point = %+v", mode, p)
		}
		if p := byExp["server-p99-us-"+mode]; p.ServerP99Micros <= 0 {
			t.Errorf("server-p99-us-%s point = %+v", mode, p)
		}
	}
	if p := byExp["query-pushdown"]; p.PageReads <= 0 {
		t.Errorf("query-pushdown point = %+v", p)
	}
	if p := byExp["query-parallel"]; p.QuerySpeedup <= 0 {
		t.Errorf("query-parallel point = %+v", p)
	}
}

func TestParseShards(t *testing.T) {
	got, err := parseShards("1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseShards: %v %v", got, err)
	}
	if _, err := parseShards("0"); err == nil {
		t.Fatal("accepted shard count 0")
	}
	if _, err := parseShards("x"); err == nil {
		t.Fatal("accepted junk")
	}
}
