package main

import (
	"testing"

	"repro/internal/experiments"
)

func TestRunSubset(t *testing.T) {
	// A tiny run of the non-sweep experiments plus one sweep-backed
	// table, mostly to keep the wiring honest.
	p := experiments.Params{Ops: 800, ValueSize: 16, Seed: 1}
	if err := run(map[string]bool{"E5": true, "E9": true}, p); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepBacked(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	p := experiments.Params{Ops: 800, ValueSize: 16, Seed: 1}
	if err := run(map[string]bool{"E1": true, "E4": true, "E8": true}, p); err != nil {
		t.Fatal(err)
	}
}
