// Command tsbench runs the reproduction's experiments (DESIGN.md, E1-E17)
// and prints their tables: the measurement plan stated in §3.2/§5 of
// Lomet & Salzberg (SIGMOD 1989) plus the paper's qualitative claims, the
// concurrent sharded-engine scaling run (E10), the group-commit
// fsync-amortization run (E11, durable mode in a temp directory), the
// WORM burn-rate run (E12), the paged checkpoint-duration run (E13,
// paged durable mode in a temp directory), the background-migration
// latency run (E14, inline vs background time splits under real
// write-once burn latency), the maintenance-economy run (E15, fuzzy
// checkpoint pause under concurrent writers plus compaction reclaim),
// and the closed-loop service-layer run (E16, pipelined client
// connections over loopback TCP against the tsbserve protocol,
// migration inline vs background), and the temporal query engine run
// (E17, operator-composed filter pushdown vs materialize-then-filter
// page reads, plus parallel per-shard scan speedup).
//
// Usage:
//
//	tsbench [-exp all|E1,E2,...] [-ops N] [-value BYTES] [-seed N]
//	        [-shards 1,2,4,8] [-workers N] [-conns N] [-connwindow N]
//	        [-benchjson FILE]
//
// -benchjson writes the E10 throughput points as JSON — plus the cursor
// page-read, put-latency, group-commit, worm-burn-rate,
// checkpoint-duration, migration-latency, maintenance, and served
// closed-loop trajectory points — so CI can archive a perf trajectory
// across commits covering writes, reads, durability, checkpoint cost,
// migration latency, the maintenance economy (checkpoint pause, waste
// reclaimed), and the network service layer (served throughput and
// p99).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	expFlag := flag.String("exp", "all", "experiments to run (comma-separated E1..E11, or 'all')")
	ops := flag.Int("ops", 20000, "operations per run")
	value := flag.Int("value", 32, "record payload bytes")
	seed := flag.Int64("seed", 1, "workload seed")
	dist := flag.String("dist", "uniform", "update-target distribution: uniform, zipf, sequential")
	shards := flag.String("shards", "1,2,4,8", "shard counts for the concurrent experiment (comma-separated)")
	workers := flag.Int("workers", 8, "concurrent workers for the E10 mixed workload")
	conns := flag.Int("conns", 100, "client connections for the E16 closed-loop server run")
	connWindow := flag.Int("connwindow", 8, "per-connection in-flight request window for E16")
	benchJSON := flag.String("benchjson", "", "write E10 throughput results to this file as JSON")
	flag.Parse()

	var d workload.Distribution
	switch *dist {
	case "uniform":
		d = workload.Uniform
	case "zipf":
		d = workload.Zipf
	case "sequential":
		d = workload.Sequential
	default:
		fmt.Fprintf(os.Stderr, "tsbench: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	shardCounts, err := parseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsbench:", err)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for i := 1; i <= 17; i++ {
			want[fmt.Sprintf("E%d", i)] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}
	p := experiments.Params{Ops: *ops, ValueSize: *value, Seed: *seed, Dist: d}

	if err := run(want, p, shardCounts, *workers, *conns, *connWindow, *benchJSON); err != nil {
		fmt.Fprintln(os.Stderr, "tsbench:", err)
		os.Exit(1)
	}
}

func parseShards(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func run(want map[string]bool, p experiments.Params, shardCounts []int, workers, conns, connWindow int, benchJSON string) error {
	needSweep := want["E1"] || want["E2"] || want["E3"] || want["E4"] ||
		want["E6"] || want["E7"] || want["E8"]
	var sweep *experiments.Sweep
	if needSweep {
		fmt.Printf("running space sweep: %d ops x %d policies x %d update fractions ...\n",
			p.Ops, len(experiments.PolicyNames), len(experiments.UpdateFractions))
		var err error
		sweep, err = experiments.RunSweep(p)
		if err != nil {
			return err
		}
	}
	if want["E1"] {
		fmt.Println(sweep.E1TotalSpace())
	}
	if want["E2"] {
		fmt.Println(sweep.E2CurrentSpace())
	}
	if want["E3"] {
		fmt.Println(sweep.E3Redundancy())
	}
	if want["E4"] {
		fmt.Println(sweep.E4CostFunction(0.6))
	}
	if want["E5"] {
		_, tab, err := experiments.E5SearchIO(p)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	}
	if want["E6"] {
		fmt.Println(sweep.E6SectorUtilization())
	}
	if want["E7"] {
		fmt.Println(sweep.E7SplitTimeChoice())
	}
	if want["E8"] {
		fmt.Println(sweep.E8IndexSplits())
	}
	if want["E9"] {
		_, tab, err := experiments.E9ReadOnly(4, 4, 200, 50)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	}
	opsPerWorker := p.Ops / workers
	if opsPerWorker == 0 {
		opsPerWorker = 1
	}
	var e10 []benchPoint
	if want["E10"] {
		results, tab, err := experiments.E10Concurrent(shardCounts, workers, opsPerWorker, p.Seed, p.ValueSize)
		if err != nil {
			return err
		}
		fmt.Println(tab)
		e10 = e10Points(results)
	}
	archive := benchJSON != ""
	// One group-commit run serves both the printed E11 table and the
	// archived trajectory point.
	var gcPoint *benchPoint
	if want["E11"] || archive {
		dir, err := os.MkdirTemp("", "tsbench-e11-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		gc, tab, err := experiments.E11GroupCommit(dir, workers, opsPerWorker)
		if err != nil {
			return err
		}
		if want["E11"] {
			fmt.Println(tab)
		}
		gcPoint = &benchPoint{
			Experiment: "group-commit", Shards: 8, Workers: gc.Workers, Ops: gc.Commits,
			ElapsedSec: gc.Elapsed.Seconds(), OpsPerSec: gc.OpsPerSec,
			RecordsPerSync: gc.RecordsPerSync,
		}
	}
	// Like the group-commit point: one E12/E13 run serves both the
	// printed table and the archived trajectory point.
	var burnPoint, ckptPoint *benchPoint
	if want["E12"] || archive {
		burnOps := min(p.Ops, 5000)
		burn, tab, err := experiments.WormBurnRate(burnOps)
		if err != nil {
			return err
		}
		if want["E12"] {
			fmt.Println(tab)
		}
		burnPoint = &benchPoint{
			Experiment: "worm-burn-rate", Shards: 1, Ops: burn.Ops,
			BurnedBytesPerOp: burn.BurnedPerOp, WormUtilization: burn.Utilization,
		}
	}
	if want["E13"] || archive {
		dir, err := os.MkdirTemp("", "tsbench-e13-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		large := min(max(p.Ops, 2000), 20_000)
		rows, tab, err := experiments.CheckpointDuration(dir, []int{large / 4, large}, 16)
		if err != nil {
			return err
		}
		if want["E13"] {
			fmt.Println(tab)
		}
		ckpt := rows[len(rows)-1]
		ckptPoint = &benchPoint{
			Experiment: "checkpoint-duration", Shards: 2, Ops: uint64(ckpt.Versions),
			CheckpointMillis: ckpt.Millis, FlushedPages: uint64(ckpt.DirtyFlushed),
		}
	}
	// E14 serves the printed table and two archived points (one per
	// migration mode; benchcmp keys on experiment name + shards).
	var migPoints []benchPoint
	if want["E14"] || archive {
		migOps := min(max(p.Ops/8, 250), 2000)
		rows, tab, err := experiments.E14MigrationLatency(4, workers, migOps)
		if err != nil {
			return err
		}
		if want["E14"] {
			fmt.Println(tab)
		}
		for _, r := range rows {
			migPoints = append(migPoints, benchPoint{
				Experiment: "migration-latency-" + r.Mode, Shards: r.Shards,
				Workers: r.Workers, Ops: r.Ops,
				ElapsedSec: r.Elapsed.Seconds(), OpsPerSec: r.OpsPerSec,
				PutP99Micros: r.PutP99Micros, SplitLatchMillis: r.SplitLatchMillis,
			})
		}
	}
	// E15 serves the printed table and two archived points: the
	// compaction reclaim (higher is better) and the fuzzy checkpoint
	// pause under writers (lower is better).
	var maintPoints []benchPoint
	if want["E15"] || archive {
		dir, err := os.MkdirTemp("", "tsbench-e15-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		maintOps := min(max(p.Ops/8, 250), 2000)
		res, tab, err := experiments.E15Maintenance(dir, workers, maintOps)
		if err != nil {
			return err
		}
		if want["E15"] {
			fmt.Println(tab)
		}
		maintPoints = []benchPoint{
			{Experiment: "maintenance-compaction", Shards: 2, Workers: workers, Ops: res.Ops,
				WasteReclaimedBytes: res.ReclaimedBytes, WormUtilization: res.UtilAfter},
			{Experiment: "maintenance-ckpt-pause", Shards: 2, Workers: workers, Ops: res.Ops,
				CkptPauseMillis: res.AvgPauseMillis},
		}
	}
	// E16 serves the printed table and four archived points: served
	// throughput and served client p99 per migration mode.
	var servePoints []benchPoint
	if want["E16"] || archive {
		servOps := min(max(p.Ops/max(conns, 1), 50), 500)
		rows, tab, err := experiments.E16ClosedLoop(conns, connWindow, servOps)
		if err != nil {
			return err
		}
		if want["E16"] {
			fmt.Println(tab)
		}
		for _, r := range rows {
			servePoints = append(servePoints,
				benchPoint{Experiment: "server-throughput-" + r.Mode, Shards: 8,
					Workers: r.Conns, Ops: r.Ops,
					ElapsedSec: r.Elapsed.Seconds(), OpsPerSec: r.OpsPerSec},
				benchPoint{Experiment: "server-p99-us-" + r.Mode, Shards: 8,
					Workers: r.Conns, Ops: r.Ops,
					ServerP99Micros: r.P99Micros})
		}
	}
	// E17 serves the printed table and two archived points: the pushdown
	// page-read cost (lower is better; strictly below the materialized
	// plan's) and the parallel-scan speedup (higher is better).
	var queryPoints []benchPoint
	if want["E17"] || archive {
		qKeys := min(max(p.Ops, 2000), 25_000)
		res, tab, err := experiments.E17QueryEngine(8, qKeys, 5)
		if err != nil {
			return err
		}
		if want["E17"] {
			fmt.Println(tab)
		}
		queryPoints = []benchPoint{
			{Experiment: "query-pushdown", Shards: res.Shards, Ops: uint64(res.Versions),
				PageReads: float64(res.PagesComposed)},
			{Experiment: "query-parallel", Shards: res.Shards, Ops: uint64(res.Versions),
				ElapsedSec: res.ParallelMillis / 1000, QuerySpeedup: res.Speedup},
		}
	}
	if archive {
		extra, err := trajectoryPoints(p)
		if err != nil {
			return err
		}
		points := append(e10, extra...)
		points = append(points, *burnPoint, *ckptPoint, *gcPoint)
		points = append(points, migPoints...)
		points = append(points, maintPoints...)
		points = append(points, servePoints...)
		points = append(points, queryPoints...)
		if err := writeBenchJSON(benchJSON, points); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", benchJSON)
	}
	return nil
}

// trajectoryPoints runs the small extra measurements archived alongside
// the E10 throughput curve: cursor page reads (the streaming-read
// headline) and a single-shard put-latency baseline — so the perf
// trajectory covers reads and latency, not just write throughput. (The
// group-commit, worm-burn-rate, and checkpoint-duration points are each
// measured once in run — serving the printed table too — and appended
// there.)
func trajectoryPoints(p experiments.Params) ([]benchPoint, error) {
	reads, err := experiments.CursorPageReads(20_000, 50)
	if err != nil {
		return nil, fmt.Errorf("cursor page reads: %w", err)
	}
	putOps := min(p.Ops, 2000)
	lat, err := experiments.PutLatency(putOps)
	if err != nil {
		return nil, fmt.Errorf("put latency: %w", err)
	}
	return []benchPoint{
		{Experiment: "cursor-limit1", Shards: 1, Ops: 50, PageReads: reads},
		{Experiment: "put-latency", Shards: 1, Workers: 1, Ops: uint64(putOps), AvgPutMicros: lat},
	}, nil
}

// benchPoint is the archived perf-trajectory record: one E10 throughput
// point per shard count, plus the cursor page-read, put-latency, and
// group-commit points (each with its own metric fields).
type benchPoint struct {
	Experiment string  `json:"experiment"`
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	Ops        uint64  `json:"ops"`
	Conflicts  uint64  `json:"conflicts"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	// PageReads is buffer-pool fetches per Limit=1 cursor open
	// (cursor-limit1 points).
	PageReads float64 `json:"page_reads,omitempty"`
	// AvgPutMicros is the mean single-shard committed-write latency
	// (put-latency points).
	AvgPutMicros float64 `json:"avg_put_us,omitempty"`
	// RecordsPerSync is commit records per fsync (group-commit points).
	RecordsPerSync float64 `json:"records_per_sync,omitempty"`
	// BurnedBytesPerOp is write-once capacity consumed per commit and
	// WormUtilization its payload fraction (worm-burn-rate points).
	BurnedBytesPerOp float64 `json:"burned_b_per_op,omitempty"`
	WormUtilization  float64 `json:"worm_utilization,omitempty"`
	// CheckpointMillis is the duration of a paged checkpoint after a
	// fixed small dirty set, FlushedPages how many pages it wrote
	// (checkpoint-duration points): O(dirty), not O(database).
	CheckpointMillis float64 `json:"checkpoint_ms,omitempty"`
	FlushedPages     uint64  `json:"flushed_pages,omitempty"`
	// PutP99Micros is the tail put latency and SplitLatchMillis the time
	// spent splitting under shard write latches (migration-latency
	// points, one per mode: background must beat inline on both).
	PutP99Micros     float64 `json:"put_p99_us,omitempty"`
	SplitLatchMillis float64 `json:"split_latch_ms,omitempty"`
	// WasteReclaimedBytes is the write-once capacity compaction handed
	// back after aging the directory (maintenance-compaction points;
	// higher is better). CkptPauseMillis is the mean commit-posting
	// pause per checkpoint with writers running (maintenance-ckpt-pause
	// points; the fuzzy per-flush-group capture keeps it low).
	WasteReclaimedBytes uint64  `json:"waste_reclaimed_b,omitempty"`
	CkptPauseMillis     float64 `json:"ckpt_pause_ms,omitempty"`
	// ServerP99Micros is the client-observed send-to-response p99 of
	// the closed-loop served run (server-p99-us points, one per
	// migration mode; lower is better).
	ServerP99Micros float64 `json:"server_p99_us,omitempty"`
	// QuerySpeedup is serial/parallel full-scan wall-clock for the
	// operator-composed query engine (query-parallel points; higher is
	// better). The query-pushdown points reuse PageReads: buffer fetches
	// for the pushed-down low-selectivity filter (lower is better).
	QuerySpeedup float64 `json:"query_speedup,omitempty"`
}

// e10Points converts the E10 results to archive records.
func e10Points(results []experiments.E10Result) []benchPoint {
	points := make([]benchPoint, 0, len(results))
	for _, r := range results {
		points = append(points, benchPoint{
			Experiment: "E10-concurrent-mixed",
			Shards:     r.Shards,
			Workers:    r.Workers,
			Ops:        r.Ops,
			Conflicts:  r.Conflicts,
			ElapsedSec: r.Elapsed.Seconds(),
			OpsPerSec:  r.OpsPerSec,
		})
	}
	return points
}

func writeBenchJSON(path string, points []benchPoint) error {
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
