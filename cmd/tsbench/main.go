// Command tsbench runs the reproduction's experiments (DESIGN.md, E1-E9)
// and prints their tables: the measurement plan stated in §3.2/§5 of
// Lomet & Salzberg (SIGMOD 1989) plus the paper's qualitative claims.
//
// Usage:
//
//	tsbench [-exp all|E1,E2,...] [-ops N] [-value BYTES] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	expFlag := flag.String("exp", "all", "experiments to run (comma-separated E1..E9, or 'all')")
	ops := flag.Int("ops", 20000, "operations per run")
	value := flag.Int("value", 32, "record payload bytes")
	seed := flag.Int64("seed", 1, "workload seed")
	dist := flag.String("dist", "uniform", "update-target distribution: uniform, zipf, sequential")
	flag.Parse()

	var d workload.Distribution
	switch *dist {
	case "uniform":
		d = workload.Uniform
	case "zipf":
		d = workload.Zipf
	case "sequential":
		d = workload.Sequential
	default:
		fmt.Fprintf(os.Stderr, "tsbench: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *expFlag == "all" {
		for i := 1; i <= 9; i++ {
			want[fmt.Sprintf("E%d", i)] = true
		}
	} else {
		for _, e := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(e))] = true
		}
	}
	p := experiments.Params{Ops: *ops, ValueSize: *value, Seed: *seed, Dist: d}

	if err := run(want, p); err != nil {
		fmt.Fprintln(os.Stderr, "tsbench:", err)
		os.Exit(1)
	}
}

func run(want map[string]bool, p experiments.Params) error {
	needSweep := want["E1"] || want["E2"] || want["E3"] || want["E4"] ||
		want["E6"] || want["E7"] || want["E8"]
	var sweep *experiments.Sweep
	if needSweep {
		fmt.Printf("running space sweep: %d ops x %d policies x %d update fractions ...\n",
			p.Ops, len(experiments.PolicyNames), len(experiments.UpdateFractions))
		var err error
		sweep, err = experiments.RunSweep(p)
		if err != nil {
			return err
		}
	}
	if want["E1"] {
		fmt.Println(sweep.E1TotalSpace())
	}
	if want["E2"] {
		fmt.Println(sweep.E2CurrentSpace())
	}
	if want["E3"] {
		fmt.Println(sweep.E3Redundancy())
	}
	if want["E4"] {
		fmt.Println(sweep.E4CostFunction(0.6))
	}
	if want["E5"] {
		_, tab, err := experiments.E5SearchIO(p)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	}
	if want["E6"] {
		fmt.Println(sweep.E6SectorUtilization())
	}
	if want["E7"] {
		fmt.Println(sweep.E7SplitTimeChoice())
	}
	if want["E8"] {
		fmt.Println(sweep.E8IndexSplits())
	}
	if want["E9"] {
		_, tab, err := experiments.E9ReadOnly(4, 4, 200, 50)
		if err != nil {
			return err
		}
		fmt.Println(tab)
	}
	return nil
}
