package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `[
	 {"experiment":"E10-concurrent-mixed","shards":1,"workers":8,"ops":8000,"ops_per_sec":1000},
	 {"experiment":"E10-concurrent-mixed","shards":8,"workers":8,"ops":8000,"ops_per_sec":4000}
	]`
	newJSON := `[
	 {"experiment":"E10-concurrent-mixed","shards":1,"workers":8,"ops":8000,"ops_per_sec":1100},
	 {"experiment":"E10-concurrent-mixed","shards":8,"workers":8,"ops":8000,"ops_per_sec":3600},
	 {"experiment":"E10-concurrent-mixed","shards":16,"workers":8,"ops":8000,"ops_per_sec":5000}
	]`
	out, err := compare(write(t, dir, "old.json", oldJSON), write(t, dir, "new.json", newJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"+10.0%", "-10.0%", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rows ordered by shard count.
	i1 := strings.Index(out, "shards=1 ")
	i8 := strings.Index(out, "shards=8 ")
	if i1 < 0 || i8 < 0 || i1 > i8 {
		t.Errorf("rows out of order:\n%s", out)
	}
}

func TestCompareExtraTrajectoryPoints(t *testing.T) {
	dir := t.TempDir()
	// An old archive predating the extra points diffs cleanly against a
	// new one that has them.
	oldJSON := `[
	 {"experiment":"E10-concurrent-mixed","shards":1,"ops":8000,"ops_per_sec":1000},
	 {"experiment":"cursor-limit1","shards":1,"ops":50,"page_reads":6.0},
	 {"experiment":"put-latency","shards":1,"ops":2000,"avg_put_us":40.0}
	]`
	newJSON := `[
	 {"experiment":"E10-concurrent-mixed","shards":1,"ops":8000,"ops_per_sec":1000},
	 {"experiment":"cursor-limit1","shards":1,"ops":50,"page_reads":9.0},
	 {"experiment":"put-latency","shards":1,"ops":2000,"avg_put_us":20.0},
	 {"experiment":"group-commit","shards":8,"workers":8,"ops":8000,"ops_per_sec":9000,"records_per_sync":3.5}
	]`
	out, err := compare(write(t, dir, "old.json", oldJSON), write(t, dir, "new.json", newJSON))
	if err != nil {
		t.Fatal(err)
	}
	// Page reads went up 50%: flagged as a regression (lower is better).
	if !strings.Contains(out, "pagereads/op") || !strings.Contains(out, "+50.0%  <-- regression?") {
		t.Errorf("missing page-read regression flag:\n%s", out)
	}
	// Put latency halved: an improvement, not flagged.
	if !strings.Contains(out, "us/put") || !strings.Contains(out, "-50.0%") {
		t.Errorf("missing put-latency delta:\n%s", out)
	}
	if strings.Contains(out, "-50.0%  <-- regression?") {
		t.Errorf("improvement wrongly flagged:\n%s", out)
	}
	// The group-commit point is new, with its amortization column.
	if !strings.Contains(out, "group-commit/shards=8") {
		t.Errorf("missing group-commit point:\n%s", out)
	}
	// The E10 curve still leads the table.
	if strings.Index(out, "E10-concurrent-mixed") > strings.Index(out, "cursor-limit1") {
		t.Errorf("E10 rows should come first:\n%s", out)
	}
}

func TestCompareAmortizationColumn(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `[{"experiment":"group-commit","shards":8,"ops_per_sec":5000,"records_per_sync":2.0}]`
	newJSON := `[{"experiment":"group-commit","shards":8,"ops_per_sec":6000,"records_per_sync":4.0}]`
	out, err := compare(write(t, dir, "old.json", oldJSON), write(t, dir, "new.json", newJSON))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "commits/sync") || !strings.Contains(out, "+100.0%") {
		t.Errorf("missing amortization delta:\n%s", out)
	}
}

func TestCompareBadInput(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.json", `[]`)
	bad := write(t, dir, "bad.json", `{not json`)
	if _, err := compare(good, bad); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	if _, err := compare(filepath.Join(dir, "missing.json"), good); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestComparePagedPoints(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `[
	 {"experiment":"worm-burn-rate","shards":1,"ops":5000,"burned_b_per_op":40,"worm_utilization":0.9},
	 {"experiment":"checkpoint-duration","shards":2,"ops":20000,"checkpoint_ms":4.0,"flushed_pages":20}
	]`
	newJSON := `[
	 {"experiment":"worm-burn-rate","shards":1,"ops":5000,"burned_b_per_op":60,"worm_utilization":0.7},
	 {"experiment":"checkpoint-duration","shards":2,"ops":20000,"checkpoint_ms":6.0,"flushed_pages":80}
	]`
	out, err := compare(write(t, dir, "old.json", oldJSON), write(t, dir, "new.json", newJSON))
	if err != nil {
		t.Fatal(err)
	}
	// Both headline metrics are lower-is-better: growth is flagged.
	for _, want := range []string{"burned-B/op", "ckpt-ms", "utilization", "flushedpages"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "regression?"); got < 3 {
		t.Errorf("want >=3 regression flags (burned/op +50%%, ckpt-ms +50%%, flushed +300%%, utilization -22%%), got %d:\n%s", got, out)
	}
}
