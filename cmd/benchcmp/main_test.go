package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldJSON := `[
	 {"experiment":"E10-concurrent-mixed","shards":1,"workers":8,"ops":8000,"ops_per_sec":1000},
	 {"experiment":"E10-concurrent-mixed","shards":8,"workers":8,"ops":8000,"ops_per_sec":4000}
	]`
	newJSON := `[
	 {"experiment":"E10-concurrent-mixed","shards":1,"workers":8,"ops":8000,"ops_per_sec":1100},
	 {"experiment":"E10-concurrent-mixed","shards":8,"workers":8,"ops":8000,"ops_per_sec":3600},
	 {"experiment":"E10-concurrent-mixed","shards":16,"workers":8,"ops":8000,"ops_per_sec":5000}
	]`
	out, err := compare(write(t, dir, "old.json", oldJSON), write(t, dir, "new.json", newJSON))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"+10.0%", "-10.0%", "new"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Rows ordered by shard count.
	if strings.Index(out, "\n1 ") > strings.Index(out, "\n8 ") && strings.Index(out, "\n8 ") >= 0 {
		t.Errorf("rows out of order:\n%s", out)
	}
}

func TestCompareBadInput(t *testing.T) {
	dir := t.TempDir()
	good := write(t, dir, "good.json", `[]`)
	bad := write(t, dir, "bad.json", `{not json`)
	if _, err := compare(good, bad); err == nil {
		t.Fatal("malformed JSON must fail")
	}
	if _, err := compare(filepath.Join(dir, "missing.json"), good); err == nil {
		t.Fatal("missing file must fail")
	}
}
