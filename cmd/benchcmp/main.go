// Command benchcmp compares two BENCH_E10.json files (the perf-trajectory
// points tsbench -benchjson emits) and prints the delta per point — the
// "compare across PRs" half of the benchmark trajectory: CI archives each
// run's points and diffs them against the previous run on main.
//
// Points are keyed by (experiment, shards). The E10 throughput curve
// diffs on ops/sec; the cursor-limit1 point on page reads per cursor
// (lower is better); the put-latency point on microseconds per put
// (lower is better); the group-commit point on ops/sec and additionally
// reports the records-per-fsync amortization shift; the
// maintenance-compaction point on waste reclaimed (higher is better);
// the maintenance-ckpt-pause point on the per-checkpoint commit
// pause (lower is better); the server-throughput points on ops/sec and
// the server-p99-us points on the closed-loop served tail latency
// (lower is better); the query-pushdown point on pages read by the
// pushed-down filter (lower is better) and the query-parallel point on
// the parallel-scan speedup (higher is better).
//
// Usage:
//
//	benchcmp OLD.json NEW.json
//
// Exit status is always 0 when both files parse: a perf regression is a
// signal for a human, not a build failure (the simulated-device numbers
// are noisy on shared runners).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// point mirrors the benchPoint schema tsbench writes. Old archives
// predate the extra metric fields; zero values mean "not measured".
type point struct {
	Experiment       string  `json:"experiment"`
	Shards           int     `json:"shards"`
	Workers          int     `json:"workers"`
	Ops              uint64  `json:"ops"`
	Conflicts        uint64  `json:"conflicts"`
	ElapsedSec       float64 `json:"elapsed_sec"`
	OpsPerSec        float64 `json:"ops_per_sec"`
	PageReads        float64 `json:"page_reads,omitempty"`
	AvgPutMicros     float64 `json:"avg_put_us,omitempty"`
	RecordsPerSync   float64 `json:"records_per_sync,omitempty"`
	BurnedBytesPerOp float64 `json:"burned_b_per_op,omitempty"`
	WormUtilization  float64 `json:"worm_utilization,omitempty"`
	CheckpointMillis float64 `json:"checkpoint_ms,omitempty"`
	FlushedPages     uint64  `json:"flushed_pages,omitempty"`
	PutP99Micros     float64 `json:"put_p99_us,omitempty"`
	SplitLatchMillis float64 `json:"split_latch_ms,omitempty"`
	WasteReclaimed   uint64  `json:"waste_reclaimed_b,omitempty"`
	CkptPauseMillis  float64 `json:"ckpt_pause_ms,omitempty"`
	ServerP99Micros  float64 `json:"server_p99_us,omitempty"`
	QuerySpeedup     float64 `json:"query_speedup,omitempty"`
}

// key identifies a trajectory point across runs.
type key struct {
	experiment string
	shards     int
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	out, err := compare(os.Args[1], os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func load(path string) (map[key]point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pts []point
	if err := json.Unmarshal(data, &pts); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byKey := make(map[key]point, len(pts))
	for _, p := range pts {
		exp := p.Experiment
		if exp == "" {
			exp = "E10-concurrent-mixed"
		}
		byKey[key{exp, p.Shards}] = p
	}
	return byKey, nil
}

// metric names the quantity a point is compared on, and its regression
// direction: burned bytes per op, checkpoint milliseconds, the
// migration-latency put p99, and the maintenance checkpoint pause
// regress upward (more write-once capacity consumed, slower or
// longer-pausing checkpoints, fatter latency tails), like page reads
// and put latency; throughput and the compaction reclaim regress
// downward (less waste handed back for the same aging).
func metric(p point) (name string, value float64, lowerIsBetter bool) {
	switch {
	case p.PageReads > 0:
		return "pagereads/op", p.PageReads, true
	case p.AvgPutMicros > 0:
		return "us/put", p.AvgPutMicros, true
	case p.BurnedBytesPerOp > 0:
		return "burned-B/op", p.BurnedBytesPerOp, true
	case p.CheckpointMillis > 0:
		return "ckpt-ms", p.CheckpointMillis, true
	case p.PutP99Micros > 0:
		return "p99-us/put", p.PutP99Micros, true
	case p.WasteReclaimed > 0:
		return "reclaimed-B", float64(p.WasteReclaimed), false
	case p.CkptPauseMillis > 0:
		return "ckpt-pause-ms", p.CkptPauseMillis, true
	case p.ServerP99Micros > 0:
		// Served closed-loop tail latency: client-observed
		// send-to-response p99 through the tsbserve protocol.
		return "server-p99-us", p.ServerP99Micros, true
	case p.QuerySpeedup > 0:
		// Parallel-scan speedup over the serial plan: regresses downward
		// (the per-shard fan-out stops paying for its merge).
		return "speedup", p.QuerySpeedup, false
	default:
		return "ops/sec", p.OpsPerSec, false
	}
}

// compare renders the old-vs-new table. Points present in only one file
// are reported as such rather than dropped.
func compare(oldPath, newPath string) (string, error) {
	oldPts, err := load(oldPath)
	if err != nil {
		return "", err
	}
	newPts, err := load(newPath)
	if err != nil {
		return "", err
	}
	keySet := make(map[key]bool)
	for k := range oldPts {
		keySet[k] = true
	}
	for k := range newPts {
		keySet[k] = true
	}
	keys := make([]key, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		// The E10 curve first (the historical table), then the extra
		// trajectory points alphabetically.
		ei, ej := keys[i].experiment == "E10-concurrent-mixed", keys[j].experiment == "E10-concurrent-mixed"
		if ei != ej {
			return ei
		}
		if keys[i].experiment != keys[j].experiment {
			return keys[i].experiment < keys[j].experiment
		}
		return keys[i].shards < keys[j].shards
	})

	out := fmt.Sprintf("%-28s %-12s %14s %14s %9s\n", "point", "metric", "old", "new", "delta")
	for _, k := range keys {
		label := fmt.Sprintf("%s/shards=%d", k.experiment, k.shards)
		o, haveOld := oldPts[k]
		n, haveNew := newPts[k]
		switch {
		case !haveOld:
			name, v, _ := metric(n)
			out += fmt.Sprintf("%-28s %-12s %14s %14.1f %9s\n", label, name, "-", v, "new")
		case !haveNew:
			name, v, _ := metric(o)
			out += fmt.Sprintf("%-28s %-12s %14.1f %14s %9s\n", label, name, v, "-", "gone")
		default:
			name, nv, lower := metric(n)
			_, ov, _ := metric(o)
			out += fmt.Sprintf("%-28s %-12s %14.1f %14.1f %s\n", label, name, ov, nv, deltaStr(ov, nv, lower))
			if o.RecordsPerSync > 0 || n.RecordsPerSync > 0 {
				out += fmt.Sprintf("%-28s %-12s %14.2f %14.2f %s\n",
					label, "commits/sync", o.RecordsPerSync, n.RecordsPerSync,
					deltaStr(o.RecordsPerSync, n.RecordsPerSync, false))
			}
			if o.WormUtilization > 0 || n.WormUtilization > 0 {
				// Utilization regresses downward: less of each burned
				// sector holds payload.
				out += fmt.Sprintf("%-28s %-12s %14.2f %14.2f %s\n",
					label, "utilization", o.WormUtilization, n.WormUtilization,
					deltaStr(o.WormUtilization, n.WormUtilization, false))
			}
			if o.SplitLatchMillis > 0 || n.SplitLatchMillis > 0 {
				// Time splitting under shard write latches: the
				// migrator's headline reduction; growth means burns are
				// drifting back onto the latch-held path.
				out += fmt.Sprintf("%-28s %-12s %14.1f %14.1f %s\n",
					label, "latch-ms", o.SplitLatchMillis, n.SplitLatchMillis,
					deltaStr(o.SplitLatchMillis, n.SplitLatchMillis, true))
			}
			if o.FlushedPages > 0 || n.FlushedPages > 0 {
				// Pages flushed for the same fixed dirty set: growth
				// means the checkpoint is drifting away from O(dirty).
				out += fmt.Sprintf("%-28s %-12s %14d %14d %s\n",
					label, "flushedpages", o.FlushedPages, n.FlushedPages,
					deltaStr(float64(o.FlushedPages), float64(n.FlushedPages), true))
			}
		}
	}
	return out, nil
}

// deltaStr renders the relative change, flagging regressions (a
// regression is "got bigger" for lower-is-better metrics).
func deltaStr(old, new float64, lowerIsBetter bool) string {
	if old == 0 {
		return fmt.Sprintf("%9s", "n/a")
	}
	pct := (new - old) / old * 100
	s := fmt.Sprintf("%+8.1f%%", pct)
	if lowerIsBetter && pct > 10 || !lowerIsBetter && pct < -10 {
		s += "  <-- regression?"
	}
	return s
}
