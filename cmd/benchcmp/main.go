// Command benchcmp compares two BENCH_E10.json files (the perf-trajectory
// points tsbench -benchjson emits) and prints the throughput delta per
// shard count — the "compare across PRs" half of the benchmark
// trajectory: CI archives each run's point and diffs it against the
// previous run on main.
//
// Usage:
//
//	benchcmp OLD.json NEW.json
//
// Exit status is always 0 when both files parse: a perf regression is a
// signal for a human, not a build failure (the simulated-device numbers
// are noisy on shared runners).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// point mirrors the benchPoint schema tsbench writes.
type point struct {
	Experiment string  `json:"experiment"`
	Shards     int     `json:"shards"`
	Workers    int     `json:"workers"`
	Ops        uint64  `json:"ops"`
	Conflicts  uint64  `json:"conflicts"`
	ElapsedSec float64 `json:"elapsed_sec"`
	OpsPerSec  float64 `json:"ops_per_sec"`
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	out, err := compare(os.Args[1], os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}

func load(path string) (map[int]point, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pts []point
	if err := json.Unmarshal(data, &pts); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	byShards := make(map[int]point, len(pts))
	for _, p := range pts {
		byShards[p.Shards] = p
	}
	return byShards, nil
}

// compare renders the old-vs-new table. Shard counts present in only one
// file are reported as such rather than dropped.
func compare(oldPath, newPath string) (string, error) {
	oldPts, err := load(oldPath)
	if err != nil {
		return "", err
	}
	newPts, err := load(newPath)
	if err != nil {
		return "", err
	}
	shardSet := make(map[int]bool)
	for s := range oldPts {
		shardSet[s] = true
	}
	for s := range newPts {
		shardSet[s] = true
	}
	var shards []int
	for s := range shardSet {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	out := fmt.Sprintf("%-8s %14s %14s %9s\n", "shards", "old ops/sec", "new ops/sec", "delta")
	for _, s := range shards {
		o, haveOld := oldPts[s]
		n, haveNew := newPts[s]
		switch {
		case !haveOld:
			out += fmt.Sprintf("%-8d %14s %14.0f %9s\n", s, "-", n.OpsPerSec, "new")
		case !haveNew:
			out += fmt.Sprintf("%-8d %14.0f %14s %9s\n", s, o.OpsPerSec, "-", "gone")
		default:
			delta := 0.0
			if o.OpsPerSec > 0 {
				delta = (n.OpsPerSec - o.OpsPerSec) / o.OpsPerSec * 100
			}
			out += fmt.Sprintf("%-8d %14.0f %14.0f %+8.1f%%\n", s, o.OpsPerSec, n.OpsPerSec, delta)
		}
	}
	return out, nil
}
