// Command tsbvet is the repo's static checker for the latch-hierarchy
// and durability-ordering invariants (see internal/lint and the
// "Statically enforced invariants" section of docs/ARCHITECTURE.md).
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation
// is the one CI runs:
//
//	go build -o tsbvet ./cmd/tsbvet
//	go vet -vettool=$(pwd)/tsbvet ./...
//
// It also runs standalone on package patterns for quick local use:
//
//	go run ./cmd/tsbvet ./internal/...
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			// The go command interrogates the tool for a build ID with
			// -V=full and expects "<name> version devel ... buildID=<id>".
			fmt.Printf("tsbvet version devel buildID=%s\n", selfID())
			return 0
		case args[0] == "-flags":
			// Flag inventory for `go vet`; tsbvet takes none.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0])
		}
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: tsbvet <packages>   (or via go vet -vettool=tsbvet)")
		return 2
	}
	return runStandalone(args)
}

// selfID hashes the tool binary so `go vet` caches per tool build.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func runStandalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsbvet:", err)
		return 1
	}
	units, err := lint.LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsbvet:", err)
		return 1
	}
	exit := 0
	for _, u := range units {
		for _, d := range lint.RunAll(u) {
			fmt.Fprintln(os.Stderr, d)
			exit = 2
		}
	}
	return exit
}
