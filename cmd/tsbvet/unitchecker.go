package main

// The `go vet -vettool` half of tsbvet. For every package in the build,
// the go command writes a JSON config describing the unit — source
// files, the import map, and the export-data file of every dependency —
// and invokes the tool with the config path as its only argument.
// Dependencies are vetted with VetxOnly set purely to produce
// cross-package facts; tsbvet keeps its cross-package knowledge in
// internal/lint's built-in table instead, so those runs only need to
// write an (empty) facts file and exit.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"repro/internal/lint"
)

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsbvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tsbvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command reads the facts file back unconditionally; tsbvet
	// carries no cross-package facts, so an empty file always suffices.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "tsbvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiled := importer.ForCompiler(fset, compilerOf(cfg), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return compiled.Import(path)
		}),
		Sizes:     types.SizesFor(compilerOf(cfg), runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := lint.NewInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	unit := &lint.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags := lint.RunAll(unit)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func compilerOf(cfg vetConfig) string {
	if cfg.Compiler == "" || cfg.Compiler == "gc" {
		return "gc"
	}
	return cfg.Compiler
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
