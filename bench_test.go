package repro_test

// One benchmark per experiment of the paper's evaluation plan (DESIGN.md
// E1-E9), plus micro-benchmarks of the core operations. The experiment
// benchmarks run a full workload per iteration and report the headline
// quantity of their table via b.ReportMetric; `go run ./cmd/tsbench`
// prints the full tables.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/experiments"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/workload"
)

// benchParams keeps a full sweep iteration to a few seconds.
var benchParams = experiments.Params{
	Ops: 5000, ValueSize: 32, Seed: 1, PageSize: 4096, SectorSize: 1024,
}

func runSweep(b *testing.B) *experiments.Sweep {
	b.Helper()
	s, err := experiments.RunSweep(benchParams)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkE1TotalSpace regenerates the E1 table (total space use vs
// update fraction per splitting policy, §5 plan) and reports the
// key-pref : WOBT total-space ratio at u=1.0.
func BenchmarkE1TotalSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSweep(b)
		tsb := s.TSB["tsb-keypref"][1.0].Report.TotalBytes()
		wobtStats := s.WOBT[1.0].WORM.Stats()
		wobt := wobtStats.BytesBurned(benchParams.SectorSize)
		if i == b.N-1 {
			b.ReportMetric(float64(tsb)/1024, "tsb-keypref-KiB")
			b.ReportMetric(float64(wobt)/1024, "wobt-KiB")
			b.Logf("\n%s", s.E1TotalSpace())
		}
	}
}

// BenchmarkE2CurrentSpace regenerates the E2 table (current-database space
// use) and reports magnetic KiB for the time-pref and key-pref extremes at
// u=1.0.
func BenchmarkE2CurrentSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSweep(b)
		if i == b.N-1 {
			b.ReportMetric(float64(s.TSB["tsb-timepref"][1.0].Report.MagneticBytes)/1024, "timepref-KiB")
			b.ReportMetric(float64(s.TSB["tsb-keypref"][1.0].Report.MagneticBytes)/1024, "keypref-KiB")
			b.Logf("\n%s", s.E2CurrentSpace())
		}
	}
}

// BenchmarkE3Redundancy regenerates the E3 table (redundant copies per
// distinct version).
func BenchmarkE3Redundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSweep(b)
		if i == b.N-1 {
			b.ReportMetric(s.TSB["tsb-now"][1.0].Report.RedundancyRatio(), "now-redundancy")
			b.ReportMetric(s.TSB["tsb-lastupdate"][1.0].Report.RedundancyRatio(), "lastupdate-redundancy")
			b.Logf("\n%s", s.E3Redundancy())
		}
	}
}

// BenchmarkE4CostFunction regenerates the E4 table (CS = SpaceM·CM +
// SpaceO·CO across CO/CM ratios, §3.2).
func BenchmarkE4CostFunction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSweep(b)
		if i == b.N-1 {
			rep := s.TSB["tsb-lastupdate"][0.6].Report
			b.ReportMetric(rep.Cost(1.0, 0.1)/1024, "CS-co0.1-KiB")
			b.ReportMetric(rep.Cost(1.0, 1.0)/1024, "CS-co1.0-KiB")
			b.Logf("\n%s", s.E4CostFunction(0.6))
		}
	}
}

// BenchmarkE5SearchIO regenerates the E5 table (device reads and simulated
// latency per query kind per structure).
func BenchmarkE5SearchIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, tab, err := experiments.E5SearchIO(benchParams)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range results {
				if r.Query == "get-current" {
					b.ReportMetric(r.AvgReads, r.Structure+"-reads/get")
				}
			}
			b.Logf("\n%s", tab)
		}
	}
}

// BenchmarkE6SectorUtilization regenerates the E6 table (WORM sector
// utilization: consolidated appends vs one-record-per-sector writes, §1).
func BenchmarkE6SectorUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSweep(b)
		if i == b.N-1 {
			b.ReportMetric(s.TSB["tsb-timepref"][1.0].Report.SectorUtilization, "tsb-utilization")
			b.ReportMetric(s.WOBT[1.0].WORM.Stats().Utilization(benchParams.SectorSize), "wobt-utilization")
			b.Logf("\n%s", s.E6SectorUtilization())
		}
	}
}

// BenchmarkE7SplitTimeChoice regenerates the E7 table (split-time choice
// ablation, §3.3).
func BenchmarkE7SplitTimeChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSweep(b)
		if i == b.N-1 {
			b.ReportMetric(float64(s.TSB["tsb-now"][1.0].Tree.Stats().VersionsMigrated), "now-migrated")
			b.ReportMetric(float64(s.TSB["tsb-lastupdate"][1.0].Tree.Stats().VersionsMigrated), "lastupdate-migrated")
			b.Logf("\n%s", s.E7SplitTimeChoice())
		}
	}
}

// BenchmarkE8IndexSplits regenerates the E8 table (index-node split
// behaviour, §3.5).
func BenchmarkE8IndexSplits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSweep(b)
		if i == b.N-1 {
			st := s.TSB["tsb-timepref"][0.8].Tree.Stats()
			b.ReportMetric(float64(st.IndexTimeSplits), "idx-time-splits")
			b.ReportMetric(float64(st.IndexKeySplits), "idx-key-splits")
			b.Logf("\n%s", s.E8IndexSplits())
		}
	}
}

// BenchmarkE9ReadOnly regenerates the E9 table (lock-free read-only
// transactions under concurrent updaters, §4.1).
func BenchmarkE9ReadOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, tab, err := experiments.E9ReadOnly(4, 4, 100, 25)
		if err != nil {
			b.Fatal(err)
		}
		if res.SnapshotLeaks != 0 {
			b.Fatalf("snapshot leaks: %d", res.SnapshotLeaks)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(res.Commits), "commits")
			b.ReportMetric(float64(res.ReaderScans), "reader-scans")
			b.Logf("\n%s", tab)
		}
	}
}

// --- Sharded-engine scaling benchmarks (b.RunParallel) ---

// benchShardedDB opens a sharded database preloaded with spread keys.
func benchShardedDB(b *testing.B, shards, preloadKeys int) *db.DB {
	b.Helper()
	d, err := db.Open(db.Config{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < preloadKeys; i++ {
		k := workload.SpreadKey(uint64(i))
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(k, []byte("preload-payload-0123456789abcdef"))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// shardCounts are the scaling points; throughput should grow with shard
// count up to the core count of the machine (a single shard serializes
// every tree access behind one latch).
var shardCounts = []int{1, 2, 4, 8}

// BenchmarkShardedGetParallel measures read throughput: every goroutine
// issues current-version point reads over the shared preloaded key set.
// Reads of distinct shards share nothing but the atomic clock.
func BenchmarkShardedGetParallel(b *testing.B) {
	const nKeys = 4096
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			d := benchShardedDB(b, shards, nKeys)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(int64(seq.Add(1))))
				for pb.Next() {
					k := workload.SpreadKey(uint64(rng.Intn(nKeys)))
					if _, _, err := d.Get(k); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkShardedGetPutParallel measures mixed 50/50 Get/Put
// throughput. Each goroutine updates its own slice of the key space
// (no-wait lock conflicts would otherwise dominate), so the contention
// measured is structural: shard latches and the serialized commit path.
func BenchmarkShardedGetPutParallel(b *testing.B) {
	const nKeys = 4096
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			d := benchShardedDB(b, shards, nKeys)
			var seq atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := seq.Add(1)
				rng := rand.New(rand.NewSource(int64(id)))
				i := 0
				for pb.Next() {
					i++
					if i%2 == 0 {
						k := workload.SpreadKey(uint64(rng.Intn(nKeys)))
						if _, _, err := d.Get(k); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					k := workload.SpreadKey(id<<32 | uint64(rng.Intn(1024)))
					err := d.Update(func(tx *txn.Txn) error {
						return tx.Put(k, []byte("benchmark-payload-0123456789abcdef"))
					})
					if err != nil && !errors.Is(err, txn.ErrLockConflict) {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkShardedGetPutParallelDurable is the durable-mode twin of
// BenchmarkShardedGetPutParallel: every commit is write-ahead logged and
// fsynced before acknowledgment, and group commit batches the
// concurrently-arriving committers into shared fsyncs. The reported
// commits/sync metric is the amortization factor (>= 2 at 8+ workers is
// the acceptance bar; RunParallel uses GOMAXPROCS goroutines).
func BenchmarkShardedGetPutParallelDurable(b *testing.B) {
	const nKeys = 4096
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			d, err := db.Open(db.Config{Shards: shards, Dir: b.TempDir(), CheckpointBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			// Preload in multi-key transactions: one fsync per 64 keys
			// keeps the untimed setup cheap.
			for base := 0; base < nKeys; base += 64 {
				err := d.Update(func(tx *txn.Txn) error {
					for i := base; i < base+64 && i < nKeys; i++ {
						if err := tx.Put(workload.SpreadKey(uint64(i)), []byte("preload-payload-0123456789abcdef")); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			base := d.Stats()
			var seq atomic.Uint64
			// At least 8 committers even on few cores: goroutines
			// blocked in the leader's fsync syscall free the scheduler
			// for the others, which is exactly what group commit feeds
			// on.
			b.SetParallelism((8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := seq.Add(1)
				rng := rand.New(rand.NewSource(int64(id)))
				i := 0
				for pb.Next() {
					i++
					if i%2 == 0 {
						k := workload.SpreadKey(uint64(rng.Intn(nKeys)))
						if _, _, err := d.Get(k); err != nil {
							b.Error(err)
							return
						}
						continue
					}
					k := workload.SpreadKey(id<<32 | uint64(rng.Intn(1024)))
					err := d.Update(func(tx *txn.Txn) error {
						return tx.Put(k, []byte("benchmark-payload-0123456789abcdef"))
					})
					if err != nil && !errors.Is(err, txn.ErrLockConflict) {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			st := d.Stats()
			if syncs := st.WAL.Syncs - base.WAL.Syncs; syncs > 0 {
				b.ReportMetric(float64(st.WAL.Records-base.WAL.Records)/float64(syncs), "commits/sync")
			}
		})
	}
}

// BenchmarkGroupCommit measures the pure durable commit path: every
// worker commits single-key transactions back to back, so throughput is
// bounded by how well fsyncs amortize across committers. Reported
// metric: commit records per fsync.
func BenchmarkGroupCommit(b *testing.B) {
	d, err := db.Open(db.Config{Shards: 8, Dir: b.TempDir(), CheckpointBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	base := d.Stats().WAL
	var seq atomic.Uint64
	b.SetParallelism((8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := seq.Add(1)
		i := 0
		for pb.Next() {
			i++
			k := workload.SpreadKey(id<<32 | uint64(i%4096))
			err := d.Update(func(tx *txn.Txn) error {
				return tx.Put(k, []byte("group-commit-payload-0123456789"))
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := d.Stats().WAL
	if syncs := st.Syncs - base.Syncs; syncs > 0 {
		b.ReportMetric(float64(st.Records-base.Records)/float64(syncs), "commits/sync")
	}
}

// BenchmarkShardedSnapshotScanParallel measures wait-free-timestamp
// snapshot scans (§4.1's backup path) racing against nothing: scans of
// all shards under shared latches.
func BenchmarkShardedSnapshotScanParallel(b *testing.B) {
	const nKeys = 2048
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			d := benchShardedDB(b, shards, nKeys)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					snap := d.ReadOnly()
					if _, err := snap.Scan(nil, record.InfiniteBound()); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// --- Micro-benchmarks of the core TSB-tree operations ---

func benchTree(b *testing.B, policy core.Policy, preload int, u float64) *core.Tree {
	b.Helper()
	mag := storage.NewMagneticDisk(4096, storage.CostModel{})
	worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 1024})
	tree, err := core.New(mag, worm, core.Config{Policy: policy, MaxKeySize: 32})
	if err != nil {
		b.Fatal(err)
	}
	ts := record.Timestamp(0)
	for i := 0; i < preload; i++ {
		ts++
		key := i
		if u > 0 && i%2 == 0 {
			key = i % int(float64(preload)*(1-u)+1)
		}
		err := tree.Insert(record.Version{
			Key:   record.StringKey(fmt.Sprintf("key%08d", key)),
			Time:  ts,
			Value: []byte("benchmark-payload-0123456789abcdef"),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

func BenchmarkInsertSequential(b *testing.B) {
	tree := benchTree(b, core.PolicyLastUpdate, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := tree.Insert(record.Version{
			Key:   record.StringKey(fmt.Sprintf("key%08d", i)),
			Time:  record.Timestamp(i + 1),
			Value: []byte("benchmark-payload-0123456789abcdef"),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertUpdateHeavy(b *testing.B) {
	tree := benchTree(b, core.PolicyLastUpdate, 1000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := tree.Insert(record.Version{
			Key:   record.StringKey(fmt.Sprintf("key%08d", i%1000)),
			Time:  record.Timestamp(1001 + i),
			Value: []byte("benchmark-payload-0123456789abcdef"),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetCurrent(b *testing.B) {
	tree := benchTree(b, core.PolicyLastUpdate, 5000, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tree.Get(record.StringKey(fmt.Sprintf("key%08d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetAsOf(b *testing.B) {
	tree := benchTree(b, core.PolicyLastUpdate, 5000, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := tree.GetAsOf(
			record.StringKey(fmt.Sprintf("key%08d", i%1000)),
			record.Timestamp(1+i%5000))
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotScan(b *testing.B) {
	tree := benchTree(b, core.PolicyLastUpdate, 5000, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := tree.ScanAsOf(record.Timestamp(1+i%5000), nil, record.InfiniteBound())
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistory(b *testing.B) {
	tree := benchTree(b, core.PolicyLastUpdate, 5000, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.History(record.StringKey(fmt.Sprintf("key%08d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

// cursorBenchDB builds a database holding versions versions across
// versions/5 keys, shared by the cursor benchmarks.
func cursorBenchDB(b *testing.B, versions int) *db.DB {
	b.Helper()
	d, err := db.Open(db.Config{LeafCapacity: 512, IndexCapacity: 1024})
	if err != nil {
		b.Fatal(err)
	}
	keys := versions / 5
	for r := 0; r < 5; r++ {
		for base := 0; base < keys; base += 100 {
			err := d.Update(func(tx *txn.Txn) error {
				for i := base; i < base+100 && i < keys; i++ {
					k := record.Uint64Key(uint64(i) * 0x9e3779b97f4a7c15)
					if err := tx.Put(k, []byte("benchpayload")); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	return d
}

// BenchmarkCursorLimit1 measures the headline win of the streaming read
// API: "first row of a big snapshot" is O(tree-depth) page reads, not a
// materialized scan. Reported metric: buffer-pool page fetches per op.
func BenchmarkCursorLimit1(b *testing.B) {
	d := cursorBenchDB(b, 100_000)
	fetches := func() uint64 { st := d.Stats().Buffer; return st.Hits + st.Misses }
	start := fetches()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := d.Cursor(nil, record.InfiniteBound(), db.ScanOptions{Limit: 1})
		if !cur.Next() {
			b.Fatal(cur.Err())
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(fetches()-start)/float64(b.N), "pagereads/op")
}

// BenchmarkCursorStream iterates a full 20k-key snapshot through the
// cursor, the streaming counterpart of BenchmarkSnapshotScan's
// materializing path at the db layer.
func BenchmarkCursorStream(b *testing.B) {
	d := cursorBenchDB(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		cur := d.Cursor(nil, record.InfiniteBound(), db.ScanOptions{})
		for cur.Next() {
			n++
		}
		if cur.Err() != nil {
			b.Fatal(cur.Err())
		}
		if n != 20_000 {
			b.Fatalf("streamed %d versions", n)
		}
	}
}

// BenchmarkPagedCheckpoint measures the incremental paged checkpoint —
// the acceptance property of the paged-device subsystem: after a fixed
// small number of updates, a checkpoint's cost tracks the dirty-page
// set, not the database size. Run the two sizes and compare ms/op and
// flushed-pages/op: both should stay flat while db-pages quadruples.
func BenchmarkPagedCheckpoint(b *testing.B) {
	for _, size := range []int{4_000, 16_000} {
		b.Run(fmt.Sprintf("versions=%d", size), func(b *testing.B) {
			d, err := db.Open(db.Config{
				Dir: b.TempDir(), PagedDevices: true, Shards: 2, CheckpointBytes: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			for base := 0; base < size; base += 256 {
				err := d.Update(func(tx *txn.Txn) error {
					for i := base; i < base+256 && i < size; i++ {
						k := workload.SpreadKey(uint64(i))
						if err := tx.Put(k, []byte("paged-checkpoint-payload-0123456789")); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			if err := d.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			flushedBase := d.Stats().Buffer.FlushedPages
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				for i := 0; i < 16; i++ {
					k := workload.SpreadKey(uint64(i * (size/16 + 1)))
					if err := d.Update(func(tx *txn.Txn) error { return tx.Put(k, []byte("dirty")) }); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if err := d.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := d.Stats()
			b.ReportMetric(float64(st.Buffer.FlushedPages-flushedBase)/float64(b.N), "flushedpages/op")
			b.ReportMetric(float64(st.Magnetic.PagesInUse), "db-pages")
		})
	}
}

// BenchmarkMigrator is the background time-split migrator's acceptance
// benchmark: the same paced update-heavy workload (8 workers, real
// write-once burn latency) with migration inline vs background, run once
// per iteration (E14 always measures both modes, so one run feeds all
// four metrics). Background mode must cut put p99 and split-latch time —
// the burn leaves the shard's write latch. The full table (p50,
// throughput, migration counts) is `tsbench -exp E14`.
func BenchmarkMigrator(b *testing.B) {
	sums := map[string]float64{}
	for n := 0; n < b.N; n++ {
		rs, _, err := experiments.E14MigrationLatency(4, 8, 500)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			sums[r.Mode+"-put-p99-us"] += r.PutP99Micros
			sums[r.Mode+"-latch-ms"] += r.SplitLatchMillis
		}
	}
	for name, sum := range sums {
		b.ReportMetric(sum/float64(b.N), name)
	}
}
