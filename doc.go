// Package repro is a from-scratch Go reproduction of David Lomet & Betty
// Salzberg, "Access Methods for Multiversion Data", SIGMOD 1989 — the
// Time-Split B-tree (TSB-tree).
//
// The system lives in internal/ (see DESIGN.md for the inventory):
//
//   - internal/core: the TSB-tree itself (the paper's contribution);
//   - internal/wobt: Easton's Write-Once B-tree, the §2 baseline;
//   - internal/bplus: a single-version B+-tree comparator;
//   - internal/storage: simulated magnetic and write-once devices;
//   - internal/buffer, internal/record: substrates;
//   - internal/txn, internal/secondary, internal/db: the §4/§3.6
//     transaction and secondary-index layers and the engine facade;
//   - internal/workload, internal/metrics, internal/experiments: the
//     evaluation harness (experiments E1-E9, see EXPERIMENTS.md).
//
// The benchmarks in bench_test.go regenerate every experiment; the
// binaries under cmd/ print the experiment tables (tsbench), replay the
// paper's figures (figures), and dump tree structure (tsbdump).
package repro
