// Package repro is a from-scratch Go reproduction of David Lomet & Betty
// Salzberg, "Access Methods for Multiversion Data", SIGMOD 1989 — the
// Time-Split B-tree (TSB-tree).
//
// docs/ARCHITECTURE.md is the orientation document: the layer map, the
// latch hierarchy, the durability contract (logical v3 vs paged v4
// checkpoints), the background-migration state machine with its
// admissible interleavings, the maintenance economy (the background
// scheduler, WORM compaction, and the fuzzy per-shard checkpoint
// capture), and the statically enforced invariants: cmd/tsbvet is a
// `go vet -vettool` analyzer suite (internal/lint) that checks the
// latch hierarchy, the no-I/O-under-a-data-latch rule,
// release-on-every-path, sync-before-rename, and the sticky-error
// discipline against //tsb: directives in the source — see
// ARCHITECTURE.md ("Statically enforced invariants") for the rules and
// their escape hatches.
//
// The system lives in internal/ (see DESIGN.md for the inventory):
//
//   - internal/core: the TSB-tree itself (the paper's contribution);
//   - internal/wobt: Easton's Write-Once B-tree, the §2 baseline;
//   - internal/bplus: a single-version B+-tree comparator;
//   - internal/storage: simulated magnetic and write-once devices (and
//     the device contracts both backends satisfy);
//   - internal/pagestore: the file-backed devices of the paged durable
//     mode — a CRC-framed mutable page file with a rollback journal,
//     and an append-only burn file with torn-tail detection;
//   - internal/buffer, internal/record: substrates (the buffer pool
//     doubles as the paged mode's dirty-page table; the record package
//     also defines the shard-boundary key codec);
//   - internal/txn, internal/secondary, internal/db: the §4/§3.6
//     transaction and secondary-index layers and the engine facade;
//   - internal/query: the temporal query engine — §2.5's query classes
//     as composable streaming operators (filter with key-range
//     pushdown, project, merge join, secondary-index join, group-by,
//     limit) over snapshot/window/history/diff sources, compiled
//     against a snapshot and run serially or one-cursor-per-shard with
//     an ordered merge (db.Query/db.QueryAt embedded, OpOpenQuery/
//     OpQueryFetch over the wire; see the "Temporal query engine"
//     section of docs/ARCHITECTURE.md for the operator contract, the
//     pushdown rules, and the one-latch invariant);
//   - internal/wal: the durability subsystem — a CRC-framed,
//     fsync-batched write-ahead log of commit records plus logical
//     checkpoints;
//   - internal/workload, internal/metrics, internal/experiments: the
//     evaluation harness (experiments E1-E17, see EXPERIMENTS.md);
//   - internal/obs: the observability substrate — atomic counters,
//     gauges, and lock-free latency histograms behind a registry with
//     Prometheus-text and JSON exposition, plus ring-buffer event and
//     slow-op logs tracing background jobs; tsbserve's -metrics-addr
//     serves the live surface, and every layer above registers its
//     instruments into one registry (see the "Observability" section
//     of docs/ARCHITECTURE.md for the metric scheme);
//   - internal/server: the network service layer — a pipelined binary
//     protocol over TCP (server/wire), session read snapshots, leased
//     server-side cursors, per-tenant key-prefix namespaces, and
//     watermark-based admission shedding — with the Go client in
//     server/client and the daemon in cmd/tsbserve (see the "Service
//     layer" section of docs/ARCHITECTURE.md).
//
// The engine is concurrent and sharded: db.Config.Shards partitions the
// key space across N independent TSB-trees (key-range sharding, so range
// queries still merge in key order), each behind a reader/writer latch,
// with a shared wait-free commit clock and a no-wait lock table — see the
// internal/db package documentation for the exact guarantees. Shards: 1
// (the default) reproduces the paper's single-tree system; higher counts
// scale throughput with available cores (experiment E10,
// BenchmarkSharded* in bench_test.go).
//
// The engine is durable when opened with db.Config.Dir: committed =
// logged + fsynced — a commit is acknowledged only once its redo record
// (the stamped write set) is durable in the write-ahead log, and group
// commit coalesces concurrently-arriving committers into one log append,
// one fsync, and one clock advance (BenchmarkGroupCommit reports the
// commits-per-fsync amortization). Crash recovery reloads the latest
// checkpoint and replays the log tail, stopping at the first torn frame;
// background incremental checkpoints truncate the log without stopping
// writers. With db.Config.PagedDevices the two storage devices are
// themselves disk files (internal/pagestore) — the paper's magnetic/WORM
// hierarchy made real — and a checkpoint flushes dirty pages through a
// rollback journal instead of dumping the database: O(dirty pages)
// checkpoints (BenchmarkPagedCheckpoint), metadata-only recovery, torn
// flushes restored from the journal, torn WORM tails clipped on reopen.
// See the internal/db package documentation for the exact durability
// contract, and `tsbdump -waldir DIR` / `tsbdump -pagedir DIR` to
// inspect a durable directory.
//
// Historical-node migration can leave the insert path: with
// db.Config.BackgroundMigration an insert that would time split a leaf —
// burning its historical half to the slow write-once device while
// holding the shard's write latch — instead marks the leaf and returns
// fast; a per-shard background worker captures the historical half under
// a short read latch, burns it with no latch held, and swaps the
// rewritten leaf in under a short write latch (mark → copying → swapped;
// see docs/ARCHITECTURE.md for the state machine and its admissible
// interleavings). The consistency contract: no version is ever
// unreachable, readers see the pre- or post-swap node and never a torn
// one, and a database drained after each operation is byte-identical to
// an inline-split one. Experiment E14 (`tsbench -exp E14`,
// BenchmarkMigrator) measures the payoff under real burn latency:
// order-of-magnitude reductions in put p99 and in split-under-latch
// time. Stats().Migrator reports queue depth, nodes migrated, bytes
// burned, and abandoned burns.
//
// The same machinery keeps an aging database healthy: a per-DB
// maintenance scheduler runs incremental checkpoints
// (db.Config.CheckpointBytes) and — in paged mode — WORM compaction
// (db.Config.CompactDeadBytes, or DB.Compact on demand), which copies
// the live tail of the burn file forward, rewrites node addresses under
// short write latches, and truncates the dead prefix region away so
// Stats().Device utilization recovers. The paged checkpoint's capture
// is fuzzy: per-shard boundary LSNs let each shard's image and dirty
// pages be captured under only that shard's read latch, so the
// commit-posting pause stays flat as the database grows. Experiment E15
// (`tsbench -exp E15`) measures both — the per-checkpoint pause with
// writers running and the capacity compaction reclaims after aging; see
// the "maintenance economy" section of docs/ARCHITECTURE.md.
//
// Range reads stream: db.Cursor / txn.ReadTxn.Cursor (and the iter.Seq2
// form, Range) yield a snapshot lazily, page by page, with
// ScanOptions{Limit, Reverse, After, At, From, To} — pagination,
// descending order, per-scan time travel, and temporal windows. A cursor
// holds no latch between Next calls; each Next read-latches at most one
// shard — for a single leaf-page fetch (snapshot cursors), or for one
// shard's materialized window scan (From/To cursors) — so a Limit=1 read
// over a 100k-version snapshot costs O(tree height) page reads
// (BenchmarkCursorLimit1). The slice-returning scan APIs survive as thin
// Collect wrappers. Composed queries (db.Query, internal/query) stack
// streaming operators on those cursors and inherit the contract
// unchanged; experiment E17 (`tsbench -exp E17`) measures the filter
// pushdown's page-read gap and the parallel per-shard scan speedup.
//
// The benchmarks in bench_test.go regenerate every experiment and the
// shard-scaling curves; the binaries under cmd/ print the experiment
// tables (tsbench, including the concurrent E10 run, the served
// closed-loop E16 run, and a -benchjson perf-trajectory export),
// compare archived perf points across runs (benchcmp), replay the
// paper's figures (figures), dump tree structure — including a
// cursor-streamed snapshot sample — (tsbdump), and serve the engine
// over the network with graceful SIGTERM drain (tsbserve).
package repro
