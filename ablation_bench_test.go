package repro_test

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// buffer pool in front of the magnetic disk, the magnetic page size, the
// WOBT's fixed node extent, and the TSB-tree's index-split preference.

import (
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/record"
	"repro/internal/storage"
	"repro/internal/wobt"
	"repro/internal/workload"
)

// BenchmarkAblationBufferPool measures the page-cache hit rate and the
// device reads avoided across pool sizes, for a mixed workload plus a
// query phase.
func BenchmarkAblationBufferPool(b *testing.B) {
	for _, pages := range []int{8, 32, 128, 512} {
		pages := pages
		b.Run(fmt.Sprintf("pages=%d", pages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mag := storage.NewMagneticDisk(4096, storage.DefaultCostModel())
				pool := buffer.NewPool(mag, pages)
				worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 1024})
				tree, err := core.New(pool, worm, core.Config{Policy: core.PolicyLastUpdate, MaxKeySize: 32})
				if err != nil {
					b.Fatal(err)
				}
				gen := workload.New(workload.Config{
					Ops: 4000, UpdateFraction: 0.5, ValueSize: 32, Seed: 1, InitialKeys: 200,
				})
				ts := record.Timestamp(0)
				for _, op := range gen.InitialOps() {
					ts++
					if err := tree.Insert(record.Version{Key: op.Key, Time: ts, Value: op.Value}); err != nil {
						b.Fatal(err)
					}
				}
				for {
					op, more := gen.Next()
					if !more {
						break
					}
					ts++
					if err := tree.Insert(record.Version{Key: op.Key, Time: ts, Value: op.Value, Tombstone: op.Delete}); err != nil {
						b.Fatal(err)
					}
				}
				for q := 0; q < 2000; q++ {
					if _, _, err := tree.Get(workload.KeyName(q % gen.KeysCreated())); err != nil {
						b.Fatal(err)
					}
				}
				if i == b.N-1 {
					st := pool.Stats()
					b.ReportMetric(st.HitRate(), "hit-rate")
					b.ReportMetric(float64(mag.Stats().Reads), "device-reads")
				}
			}
		})
	}
}

// BenchmarkAblationPageSize sweeps the magnetic page size: bigger pages
// mean fewer, fatter nodes (fewer splits, more bytes rewritten per
// update).
func BenchmarkAblationPageSize(b *testing.B) {
	for _, pageSize := range []int{1024, 4096, 16384} {
		pageSize := pageSize
		b.Run(fmt.Sprintf("page=%d", pageSize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mag := storage.NewMagneticDisk(pageSize, storage.DefaultCostModel())
				worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 1024})
				tree, err := core.New(mag, worm, core.Config{Policy: core.PolicyLastUpdate, MaxKeySize: 32})
				if err != nil {
					b.Fatal(err)
				}
				ts := record.Timestamp(0)
				for op := 0; op < 4000; op++ {
					ts++
					err := tree.Insert(record.Version{
						Key:   workload.KeyName(op % 500),
						Time:  ts,
						Value: []byte("ablation-payload-0123456789abcdef"),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if i == b.N-1 {
					st := tree.Stats()
					b.ReportMetric(float64(mag.Stats().PagesInUse), "pages")
					b.ReportMetric(float64(st.LeafTimeSplits+st.LeafKeySplits), "leaf-splits")
					b.ReportMetric(float64(st.RedundantVersions), "redundant")
				}
			}
		})
	}
}

// BenchmarkAblationWOBTNodeSectors sweeps the WOBT's fixed extent size:
// the paper's baseline pays for every incremental sector regardless, but
// bigger extents split (and therefore recopy) less often.
func BenchmarkAblationWOBTNodeSectors(b *testing.B) {
	for _, sectors := range []int{4, 8, 16} {
		sectors := sectors
		b.Run(fmt.Sprintf("sectors=%d", sectors), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 1024})
				tree, err := wobt.New(worm, wobt.Config{NodeSectors: sectors})
				if err != nil {
					b.Fatal(err)
				}
				ts := record.Timestamp(0)
				for op := 0; op < 3000; op++ {
					ts++
					err := tree.Insert(record.Version{
						Key:   workload.KeyName(op % 400),
						Time:  ts,
						Value: []byte("ablation-payload"),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if i == b.N-1 {
					st := worm.Stats()
					b.ReportMetric(float64(st.SectorsBurned), "sectors-burned")
					b.ReportMetric(st.Utilization(1024), "utilization")
					b.ReportMetric(float64(tree.Stats().LeafCopies), "copies")
				}
			}
		})
	}
}

// BenchmarkAblationIndexSplitPreference sweeps the index-node split
// threshold between always-keyspace and always-time, reporting how much
// index structure migrates.
func BenchmarkAblationIndexSplitPreference(b *testing.B) {
	for _, frac := range []float64{0.0, 0.5, 1.0} {
		frac := frac
		b.Run(fmt.Sprintf("indexTimeFrac=%.1f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mag := storage.NewMagneticDisk(1024, storage.DefaultCostModel())
				worm := storage.NewWORMDisk(storage.WORMConfig{SectorSize: 512})
				tree, err := core.New(mag, worm, core.Config{
					Policy: core.Policy{
						KeySplitFraction:      0.5,
						SplitTime:             core.SplitAtLastUpdate,
						IndexKeySplitFraction: frac,
					},
					MaxKeySize: 32,
				})
				if err != nil {
					b.Fatal(err)
				}
				ts := record.Timestamp(0)
				for op := 0; op < 6000; op++ {
					ts++
					err := tree.Insert(record.Version{
						Key:   workload.KeyName(op % 300),
						Time:  ts,
						Value: []byte("payload-0123456789"),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if err := tree.CheckInvariants(); err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					st := tree.Stats()
					b.ReportMetric(float64(st.IndexTimeSplits), "idx-time")
					b.ReportMetric(float64(st.IndexKeySplits), "idx-key")
					b.ReportMetric(float64(mag.Stats().PagesInUse), "mag-pages")
				}
			}
		})
	}
}
