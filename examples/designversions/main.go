// Design versions: multiple version histories in engineering design —
// another application the paper's introduction names. Each part's design
// record evolves through revisions; a secondary TSB-tree index on the
// part's status answers temporal queries like "which parts were in review
// at the end of Q1?" using only the secondary index (§3.6).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
)

// A design record's value is "status|payload".
func status(v []byte) record.Key {
	i := bytes.IndexByte(v, '|')
	if i < 0 {
		return nil
	}
	return record.Key(v[:i])
}

func part(i int) record.Key { return record.StringKey(fmt.Sprintf("part%03d", i)) }

var statuses = []string{"draft", "review", "approved", "released"}

func main() {
	d, err := db.Open(db.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.CreateSecondary("status", status); err != nil {
		log.Fatal(err)
	}

	const nParts = 60
	rng := rand.New(rand.NewSource(5))
	stage := make([]int, nParts)

	// Every part starts as a draft.
	for i := 0; i < nParts; i++ {
		i := i
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(part(i), []byte("draft|rev0"))
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Revisions move parts through the workflow; some bounce back to
	// draft (rework), all history retained.
	var q1 record.Timestamp
	for rev := 1; rev <= 600; rev++ {
		p := rng.Intn(nParts)
		if rng.Intn(5) == 0 {
			stage[p] = 0 // rework
		} else if stage[p] < len(statuses)-1 {
			stage[p]++
		}
		val := fmt.Sprintf("%s|rev%d", statuses[stage[p]], rev)
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(part(p), []byte(val))
		}); err != nil {
			log.Fatal(err)
		}
		if rev == 200 {
			q1 = d.Now()
		}
	}

	// Temporal secondary queries, answered from the status index alone.
	fmt.Println("parts per status, end of Q1 vs now:")
	for _, s := range statuses {
		atQ1, err := d.CountSecondary("status", record.StringKey(s), q1)
		if err != nil {
			log.Fatal(err)
		}
		now, err := d.CountSecondary("status", record.StringKey(s), d.Now())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s q1=%-3d now=%-3d\n", s, atQ1, now)
	}

	// Fetch records currently in review, resolved through the primary
	// index by <primary key, timestamp> — streamed with a cursor, so
	// showing three examples fetches three records, not all of them.
	total, err := d.CountSecondary("status", record.StringKey("review"), d.Now())
	if err != nil {
		log.Fatal(err)
	}
	rcur, err := d.FetchBySecondaryCursor("status", record.StringKey("review"), d.Now(), db.ScanOptions{Limit: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d parts in review now; e.g.:\n", total)
	for rcur.Next() {
		v := rcur.Version()
		fmt.Printf("  %s = %s\n", v.Key, v.Value)
	}
	if rcur.Err() != nil {
		log.Fatal(rcur.Err())
	}
	if total > 3 {
		fmt.Println("  ...")
	}

	// When did part007 enter and leave "review"? The secondary index
	// keeps that history too.
	h, err := d.History(part(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npart007 went through %d revisions; full lineage retained\n", len(h))

	if err := d.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("primary and secondary index invariants: OK")
}
