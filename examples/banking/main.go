// Banking: the paper's Figure-1 scenario at scale. Account balances are
// stepwise constant data in a rollback database: each transaction's
// transfers are stamped with its commit time, balances hold between
// transactions, and a statement for any past moment is a single as-of
// query. A full backup runs as a lock-free read-only transaction while
// transfers keep committing (§4.1).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
)

func acct(i int) record.Key { return record.StringKey(fmt.Sprintf("acct%03d", i)) }

func balance(d *db.DB, tx *txn.Txn, k record.Key) (int, error) {
	v, ok, err := tx.Get(k)
	if err != nil || !ok {
		return 0, err
	}
	return strconv.Atoi(string(v.Value))
}

func main() {
	d, err := db.Open(db.Config{})
	if err != nil {
		log.Fatal(err)
	}
	const nAccounts = 50
	const opening = 1000

	// Open the accounts.
	for i := 0; i < nAccounts; i++ {
		i := i
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(acct(i), []byte(strconv.Itoa(opening)))
		}); err != nil {
			log.Fatal(err)
		}
	}
	openingDay := d.Now()

	// Random transfers: each moves money between two accounts in one
	// transaction, so the total is invariant.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		from, to := rng.Intn(nAccounts), rng.Intn(nAccounts)
		if from == to {
			continue
		}
		amount := 1 + rng.Intn(100)
		err := d.Update(func(tx *txn.Txn) error {
			fb, err := balance(d, tx, acct(from))
			if err != nil {
				return err
			}
			tb, err := balance(d, tx, acct(to))
			if err != nil {
				return err
			}
			if err := tx.Put(acct(from), []byte(strconv.Itoa(fb-amount))); err != nil {
				return err
			}
			return tx.Put(acct(to), []byte(strconv.Itoa(tb+amount)))
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	midDay := d.Now()

	// Statement for account 7 at three moments.
	fmt.Println("account acct007 statement:")
	for _, at := range []record.Timestamp{openingDay, midDay, d.Now()} {
		v, ok, err := d.GetAsOf(acct(7), at)
		if err != nil || !ok {
			log.Fatalf("statement: %v %v", ok, err)
		}
		fmt.Printf("  as of t=%-5v balance=%s\n", at, v.Value)
	}

	// Audit: at every sampled moment the bank's total is conserved —
	// that is the stepwise-constant semantics doing its job.
	for _, at := range []record.Timestamp{openingDay, midDay, d.Now()} {
		vs, err := d.ScanAsOf(at, nil, record.InfiniteBound())
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, v := range vs {
			n, _ := strconv.Atoi(string(v.Value))
			total += n
		}
		if total != nAccounts*opening {
			log.Fatalf("audit failed at t=%v: total=%d", at, total)
		}
		fmt.Printf("audit at t=%-5v: %d accounts, total=%d OK\n", at, len(vs), total)
	}

	// Lock-free backup while an updater holds a lock on acct000.
	blocked := d.Begin()
	if err := blocked.Put(acct(0), []byte("999999")); err != nil {
		log.Fatal(err)
	}
	// The backup streams through a cursor — the unload path of §4.1:
	// the snapshot arrives account by account, one shard latch briefly
	// held per page, never the whole database materialized or latched.
	backup := d.ReadOnly()
	copied := 0
	bcur := backup.Cursor(nil, record.InfiniteBound(), db.ScanOptions{})
	for bcur.Next() {
		copied++ // a real backup would write bcur.Version() out here
	}
	if bcur.Err() != nil {
		log.Fatal(bcur.Err())
	}
	fmt.Printf("backup at t=%v streamed %d accounts without waiting for the updater\n",
		backup.Timestamp(), copied)
	if err := blocked.Abort(); err != nil {
		log.Fatal(err)
	}

	// The full history of a busy account is retained forever.
	h, err := d.History(acct(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("acct007 has %d retained versions (non-deletion policy)\n", len(h))

	st := d.Stats()
	fmt.Printf("storage: %d magnetic pages, %d WORM sectors burned, %d versions migrated\n",
		st.Magnetic.PagesInUse, st.WORM.SectorsBurned, st.Tree.VersionsMigrated)
}
