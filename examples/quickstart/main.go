// Quickstart: open a durable multiversion database, write through
// transactions, and run the query kinds the TSB-tree supports — current
// lookup, as-of (rollback) lookup, paginated snapshot cursors, a
// composed filter→join→aggregate operator query, and full version
// history — then reopen the directory to show that everything
// committed survives a restart (committed = logged + fsynced).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/db"
	"repro/internal/query"
	"repro/internal/record"
	"repro/internal/txn"
)

func main() {
	// A durable database lives in a directory: the write-ahead log and
	// checkpoints go there, and opening the same directory later
	// recovers every acknowledged commit. PagedDevices puts the two
	// storage devices themselves on disk — pages.dev (the erasable
	// magnetic disk, CRC-guarded pages) and worm.dev (the write-once
	// disk, append-only sectors) — so a checkpoint flushes dirty pages
	// instead of rewriting a logical image of the database. (Leave Dir
	// empty for a purely in-memory database, or drop PagedDevices for
	// the logical-checkpoint durable mode.)
	dir, err := os.MkdirTemp("", "tsb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	d, err := db.Open(db.Config{Dir: dir, PagedDevices: true})
	if err != nil {
		log.Fatal(err)
	}

	// Committed transactions stamp their writes with a commit time.
	for i, val := range []string{"v1", "v2", "v3"} {
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey("greeting"), []byte(val))
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed %s (commit time %v)\n", val, d.Now())
		_ = i
	}

	// Current lookup.
	v, ok, err := d.Get(record.StringKey("greeting"))
	if err != nil || !ok {
		log.Fatalf("get: %v %v", ok, err)
	}
	fmt.Printf("current value: %s\n", v.Value)

	// Rollback: the database as it was at commit time 2.
	v, ok, err = d.GetAsOf(record.StringKey("greeting"), 2)
	if err != nil || !ok {
		log.Fatalf("as-of get: %v %v", ok, err)
	}
	fmt.Printf("value as of t=2: %s\n", v.Value)

	// An aborted transaction leaves no trace: uncommitted data never
	// reaches the historical database and is simply erased.
	tx := d.Begin()
	if err := tx.Put(record.StringKey("greeting"), []byte("oops")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}

	// Full history (non-deletion policy: every version is retained).
	h, err := d.History(record.StringKey("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("history:")
	for _, v := range h {
		fmt.Printf("  t=%v  %s\n", v.Time, v.Value)
	}

	// A few more keys so pagination has something to page over.
	for i := 0; i < 7; i++ {
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey(fmt.Sprintf("row%02d", i)), []byte(fmt.Sprintf("payload%d", i)))
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Paginated snapshot read through a lock-free read-only transaction:
	// the cursor streams the snapshot lazily — each page is a bounded
	// amount of work no matter how large the database is, and no latch
	// is held between Next calls. ScanOptions.After resumes each page
	// strictly after the last key of the previous one.
	snap := d.ReadOnly()
	fmt.Printf("snapshot at t=%v, three keys per page:\n", snap.Timestamp())
	const pageSize = 3
	var after record.Key
	for page := 1; ; page++ {
		n := 0
		cur := snap.Cursor(nil, record.InfiniteBound(), db.ScanOptions{After: after, Limit: pageSize})
		for cur.Next() {
			v := cur.Version()
			fmt.Printf("  page %d: %s = %s\n", page, v.Key, v.Value)
			after = v.Key.Clone()
			n++
		}
		if cur.Err() != nil {
			log.Fatal(cur.Err())
		}
		if n < pageSize {
			break
		}
	}

	// A composed temporal query: filter → join → aggregate, streamed by
	// the query engine (internal/query). The filter's key range is
	// pushed down into the scan window, so leaf pages outside it are
	// never fetched; the join merges the current snapshot with the
	// all-of-time window of the same keys; GroupBy folds each key's
	// stream into one row carrying its version count.
	spec := query.Scan(nil, record.InfiniteBound()).
		Filter(record.StringKey("row00"), record.KeyBound(record.StringKey("row99"))).
		Join(query.Window(nil, record.InfiniteBound(), 1, record.TimeInfinity)).
		GroupBy()
	qop, err := d.Query(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("filter -> join -> group-by (versions per row* key):")
	for qop.Next() {
		r := qop.Row()
		fmt.Printf("  %s: %d versions\n", r.Key, r.Count)
	}
	if err := qop.Err(); err != nil {
		log.Fatal(err)
	}
	if err := qop.Close(); err != nil {
		log.Fatal(err)
	}

	// The same snapshot in reverse, iterator form, stopping early: a
	// "latest two rows" query that costs two leaf reads, not a scan.
	fmt.Println("last two keys, reverse iterator:")
	for v, err := range snap.Range(nil, record.InfiniteBound(), db.ScanOptions{Reverse: true, Limit: 2}) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s = %s\n", v.Key, v.Value)
	}

	// The two-tier device accounting (the paper's SpaceM / SpaceO) and
	// the dirty-page table are visible in Stats.
	dev := d.Stats().Device
	fmt.Printf("devices: %d B magnetic (SpaceM), %d B burned (SpaceO, %.0f%% payload), %d dirty page(s)\n",
		dev.SpaceM, dev.SpaceO, dev.Utilization*100, dev.DirtyPages)

	// "Restart": close the database and recover it from the directory.
	// Every acknowledged commit — including its full version history —
	// survives. Reopening a paged directory reattaches the device files
	// at the last checkpoint boundary (verifying CRCs, clipping any
	// torn WORM tail) and replays only the WAL tail on top; the
	// crashed-mid-commit and crashed-mid-checkpoint cases are covered
	// by the WAL's torn-tail recovery and the page file's rollback
	// journal (see the db package docs).
	if err := d.Close(); err != nil {
		log.Fatal(err)
	}
	d2, err := db.Open(db.Config{Dir: dir, PagedDevices: true})
	if err != nil {
		log.Fatal(err)
	}
	defer d2.Close()
	h, err = d2.History(record.StringKey("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reopen: clock=%v, greeting has %d versions, latest %q\n",
		d2.Now(), len(h), h[len(h)-1].Value)
}
