// Quickstart: open a multiversion database, write through transactions,
// and run the four query kinds the TSB-tree supports — current lookup,
// as-of (rollback) lookup, snapshot scan, and full version history.
package main

import (
	"fmt"
	"log"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
)

func main() {
	d, err := db.Open(db.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// Committed transactions stamp their writes with a commit time.
	for i, val := range []string{"v1", "v2", "v3"} {
		err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(record.StringKey("greeting"), []byte(val))
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("committed %s (commit time %v)\n", val, d.Now())
		_ = i
	}

	// Current lookup.
	v, ok, err := d.Get(record.StringKey("greeting"))
	if err != nil || !ok {
		log.Fatalf("get: %v %v", ok, err)
	}
	fmt.Printf("current value: %s\n", v.Value)

	// Rollback: the database as it was at commit time 2.
	v, ok, err = d.GetAsOf(record.StringKey("greeting"), 2)
	if err != nil || !ok {
		log.Fatalf("as-of get: %v %v", ok, err)
	}
	fmt.Printf("value as of t=2: %s\n", v.Value)

	// An aborted transaction leaves no trace: uncommitted data never
	// reaches the historical database and is simply erased.
	tx := d.Begin()
	if err := tx.Put(record.StringKey("greeting"), []byte("oops")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}

	// Full history (non-deletion policy: every version is retained).
	h, err := d.History(record.StringKey("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("history:")
	for _, v := range h {
		fmt.Printf("  t=%v  %s\n", v.Time, v.Value)
	}

	// Snapshot scan through a lock-free read-only transaction.
	snap := d.ReadOnly()
	vs, err := snap.Scan(nil, record.InfiniteBound())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot at t=%v holds %d keys\n", snap.Timestamp(), len(vs))
}
