// Archival: a medical-records archive with a strict non-deletion policy —
// one of the application areas the paper's introduction motivates. Years
// of chart updates accumulate; old versions migrate incrementally to a
// robot library of write-once optical platters, while the working set
// stays on magnetic disk. The example reports where the data ended up,
// the sector utilization of the consolidated appends, and the simulated
// cost of cold history reads (platter mounts included).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
)

func patient(i int) record.Key { return record.StringKey(fmt.Sprintf("patient%04d", i)) }

func main() {
	d, err := db.Open(db.Config{
		// A small optical library: 256-sector platters, 2 drives, so
		// cold reads pay simulated robot mounts.
		PlatterSectors: 256,
		Drives:         2,
	})
	if err != nil {
		log.Fatal(err)
	}

	const nPatients = 200
	rng := rand.New(rand.NewSource(11))

	// Admit every patient, then years of chart updates with a skewed
	// access pattern (chronic cases see many more updates).
	for i := 0; i < nPatients; i++ {
		i := i
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(patient(i), []byte("admitted"))
		}); err != nil {
			log.Fatal(err)
		}
	}
	for visit := 0; visit < 4000; visit++ {
		p := rng.Intn(nPatients)
		if rng.Intn(4) == 0 {
			p = rng.Intn(10) // chronic cases
		}
		note := fmt.Sprintf("visit-%d: bp=%d/%d", visit, 100+rng.Intn(60), 60+rng.Intn(40))
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(patient(p), []byte(note))
		}); err != nil {
			log.Fatal(err)
		}
	}

	st := d.Stats()
	fmt.Println("archive after 4000 visits across 200 patients:")
	fmt.Printf("  current database:    %d magnetic pages (%d KiB)\n",
		st.Magnetic.PagesInUse, st.Magnetic.BytesInUse(4096)/1024)
	fmt.Printf("  historical database: %d WORM sectors (%d KiB), utilization %.1f%%\n",
		st.WORM.SectorsBurned, st.WORM.BytesBurned(1024)/1024,
		100*st.WORM.Utilization(1024))
	fmt.Printf("  versions migrated:   %d (node-at-a-time time splits: %d)\n",
		st.Tree.VersionsMigrated, st.Tree.LeafTimeSplits)

	// A chronic patient's complete chart: every version ever written is
	// still reachable through the single integrated index.
	h, err := d.History(patient(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npatient0003 chart has %d entries; first: %q, latest: %q\n",
		len(h), h[0].Value, h[len(h)-1].Value)

	// Reading a cold chart pays optical seeks and possibly robot mounts;
	// the device model accounts for them.
	mag, worm := d.Devices()
	m0, w0 := mag.Stats().SimTime, worm.Stats().SimTime
	mounts0 := worm.Stats().Mounts
	if _, err := d.History(patient(3)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold chart read cost: +%v simulated latency, %d platter mounts\n",
		(mag.Stats().SimTime-m0)+(worm.Stats().SimTime-w0),
		worm.Stats().Mounts-mounts0)

	// Current-care lookups never leave the magnetic disk.
	w1 := worm.Stats().SectorReads
	for i := 0; i < 100; i++ {
		if _, _, err := d.Get(patient(rng.Intn(nPatients))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("100 current-chart lookups touched %d optical sectors (expected 0)\n",
		worm.Stats().SectorReads-w1)

	if err := d.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index invariants: OK")

	// Checkpoint the whole archive and reopen it: both device images,
	// the tree metadata, and the clock survive the round trip.
	var checkpoint bytes.Buffer
	if err := d.SaveTo(&checkpoint); err != nil {
		log.Fatal(err)
	}
	ckSize := checkpoint.Len()
	reopened, err := db.LoadFrom(&checkpoint, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	h2, err := reopened.History(patient(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d KiB; reopened archive still holds %d chart entries for patient0003\n",
		ckSize/1024, len(h2))
}
