// Archival: a medical-records archive with a strict non-deletion policy —
// one of the application areas the paper's introduction motivates. Years
// of chart updates accumulate; old versions migrate incrementally to
// write-once optical media while the working set stays on magnetic disk.
//
// This walkthrough runs the archive with the BACKGROUND MIGRATOR
// (db.Config.BackgroundMigration): a burst of admissions and chart
// updates lands at memory speed — inserts that would have burned
// historical nodes to the (slow) write-once device inline instead mark
// their leaves and return — and the per-shard workers then drain the
// migration queue off the insert path. The example shows the
// Stats().Migrator accounting (queue depth, nodes migrated, bytes
// burned, split-under-latch time) before and after the drain, what
// Close guarantees about pending migrations, and that every chart entry
// stays reachable throughout.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/db"
	"repro/internal/record"
	"repro/internal/txn"
)

func patient(i int) record.Key { return record.StringKey(fmt.Sprintf("patient%04d", i)) }

func main() {
	d, err := db.Open(db.Config{
		// Two shards, each with its own background migration worker.
		Shards: 2,
		// Leaf capacity below the page size: a leaf queued for migration
		// needs physical headroom to keep absorbing updates until its
		// historical half is burned and swapped out.
		LeafCapacity: 1024,
		// A small optical library: 256-sector platters, 2 drives, so
		// cold reads pay simulated robot mounts.
		PlatterSectors: 256,
		Drives:         2,
		// The point of the example: historical-node burns happen on
		// background workers, not on the goroutine admitting patients.
		BackgroundMigration: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	const nPatients = 200
	rng := rand.New(rand.NewSource(11))

	// Admit every patient, then years of chart updates with a skewed
	// access pattern (chronic cases see many more updates). This is the
	// burst: every Update returns as soon as its WAL-free in-memory
	// commit posts — time splits triggered along the way only MARK
	// leaves for migration.
	for i := 0; i < nPatients; i++ {
		i := i
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(patient(i), []byte("admitted"))
		}); err != nil {
			log.Fatal(err)
		}
	}
	for visit := 0; visit < 4000; visit++ {
		p := rng.Intn(nPatients)
		if rng.Intn(4) == 0 {
			p = rng.Intn(10) // chronic cases
		}
		note := fmt.Sprintf("visit-%d: bp=%d/%d", visit, 100+rng.Intn(60), 60+rng.Intn(40))
		if err := d.Update(func(tx *txn.Txn) error {
			return tx.Put(patient(p), []byte(note))
		}); err != nil {
			log.Fatal(err)
		}
	}

	// The burst is acknowledged; the migration queue may still be
	// draining in the background.
	mig := d.Stats().Migrator
	fmt.Println("after the burst (background workers still draining):")
	fmt.Printf("  leaves marked for migration: %d (queue depth now %d, in flight %d)\n",
		mig.Marked, mig.QueueDepth, mig.InFlight)
	fmt.Printf("  migrated so far:             %d nodes, %d versions, %d KiB burned off-latch\n",
		mig.Migrated, mig.VersionsMigrated, mig.BytesBurned/1024)
	fmt.Printf("  split work under latches:    %.1f ms (inline mode pays the burns here too)\n",
		float64(mig.SplitLatchNanos)/1e6)

	// Every version is reachable RIGHT NOW, marked leaves included: a
	// reader sees the pre-swap or post-swap node, never a torn one.
	h, err := d.History(patient(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npatient0003 chart has %d entries mid-drain; first: %q, latest: %q\n",
		len(h), h[0].Value, h[len(h)-1].Value)

	// Force the queue empty — the unload discipline. After the drain,
	// every deferred historical node is on the write-once device.
	if err := d.DrainMigrations(); err != nil {
		log.Fatal(err)
	}
	mig = d.Stats().Migrator
	fmt.Println("\nafter DrainMigrations:")
	fmt.Printf("  queue depth %d, pending nodes %d; %d nodes migrated in background, %d abandoned\n",
		mig.QueueDepth, mig.PendingNodes, mig.Migrated, mig.Abandoned)

	st := d.Stats()
	fmt.Println("\narchive after 4000 visits across 200 patients:")
	fmt.Printf("  current database:    %d magnetic pages (%d KiB)\n",
		st.Magnetic.PagesInUse, st.Magnetic.BytesInUse(4096)/1024)
	fmt.Printf("  historical database: %d WORM sectors (%d KiB), utilization %.1f%%\n",
		st.WORM.SectorsBurned, st.WORM.BytesBurned(1024)/1024,
		100*st.WORM.Utilization(1024))
	fmt.Printf("  versions migrated:   %d (time splits: %d, of which %d swapped in background)\n",
		st.Tree.VersionsMigrated, st.Tree.LeafTimeSplits, mig.Migrated)

	// Reading a cold chart pays optical seeks and possibly robot mounts;
	// the device model accounts for them.
	mag, worm := d.Devices()
	m0, w0 := mag.Stats().SimTime, worm.Stats().SimTime
	mounts0 := worm.Stats().Mounts
	if _, err := d.History(patient(3)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncold chart read cost: +%v simulated latency, %d platter mounts\n",
		(mag.Stats().SimTime-m0)+(worm.Stats().SimTime-w0),
		worm.Stats().Mounts-mounts0)

	// Current-care lookups never leave the magnetic disk.
	w1 := worm.Stats().SectorReads
	for i := 0; i < 100; i++ {
		if _, _, err := d.Get(patient(rng.Intn(nPatients))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("100 current-chart lookups touched %d optical sectors (expected 0)\n",
		worm.Stats().SectorReads-w1)

	if err := d.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("index invariants: OK")

	// What Close guarantees about pending migrations: the in-flight
	// migration (if any) completes, queued marks are dropped — a marked
	// but unsplit leaf is a valid tree state, and nothing acknowledged
	// depends on a mark. We already drained, so nothing is dropped here;
	// an archive closed mid-queue simply re-marks those leaves on the
	// next burst of updates.
	if err := d.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("closed: in-flight migration finished, queue (empty after drain) released")
}
